"""The versioned columnar on-disk layout for :class:`RecordStore`.

A *layout* is a directory of plain ``.npy`` column files plus one
``header.json``::

    mystore.store/
        header.json                  # magic, versions, n, schema, extras
        vec__<field>.npy             # (n, d) float64, C-contiguous
        shl__<field>__offsets.npy    # (n + 1,) int64, offsets[0] == 0
        shl__<field>__values.npy     # (total,) int64, CSR values
        labels.npy                   # optional (n,) int64 ground truth

Columns are exactly the in-memory representation of
:class:`~repro.records.RecordStore` (vectors as one contiguous float64
matrix, shingles as a CSR-style :class:`~repro.records.ShingleColumn`),
so :meth:`StoreLayout.open` is ``np.load(..., mmap_mode="r")`` per file
plus the trusted no-copy constructor: nothing is parsed, converted, or
validated row by row, and the opened store is bit-identical to the one
that was written.  Shard workers take
:meth:`~repro.records.RecordStore.slice_view` windows over the mapped
columns, so an entire service generation shares one set of page-cache
pages.

**Versioned and append-only.**  ``header.json`` carries a
``store_version`` that each :meth:`StoreLayout.append` bumps; rows are
only ever added, never rewritten, so a store opened at version ``v``
keeps serving its ``[0, n_v)`` prefix unchanged while later versions
grow the files — the property the serving layer's generation rollover
leans on.  The ``.npy`` files are written with a fixed-size header
(padded per the format spec), so an append only extends the data and
patches the shape digits in place.

**Streaming writes.**  :class:`StoreWriter` builds a layout chunk by
chunk without ever holding the full dataset: each
:meth:`StoreWriter.append` validates and flushes one chunk of columns,
so ``cora(2_000_000)`` is constructible on a laptop (see
``repro.datasets.cora.build_cora_layout``).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Iterable, Iterator

import numpy as np

from .errors import SchemaError, SnapshotError
from .records import (
    FieldKind,
    FieldSpec,
    RecordStore,
    Schema,
    ShingleColumn,
    StoreBacking,
)
from .types import IntArray

if TYPE_CHECKING:
    from .datasets.base import Dataset

#: ``header.json`` sentinel; opens that do not find it fail fast.
LAYOUT_MAGIC = "repro-store-layout"
#: Bumped on any incompatible change to the directory format.
LAYOUT_VERSION = 1

#: Reserved on-disk ``.npy`` header size.  Large enough for any shape
#: this library writes, and a multiple of 64 as the format recommends;
#: keeping it constant lets :meth:`StoreLayout.append` patch the shape
#: in place without moving data.
_NPY_HEADER_SIZE = 128

_FIELD_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]+$")


def _column_filename(prefix: str, field: str, suffix: str = "") -> str:
    if not _FIELD_NAME_RE.match(field):
        raise SchemaError(
            f"field name {field!r} cannot name an on-disk column "
            "(allowed: letters, digits, '_', '.', '-')"
        )
    return f"{prefix}__{field}{suffix}.npy"


# ----------------------------------------------------------------------
# Patchable .npy headers
# ----------------------------------------------------------------------
def _npy_header_bytes(descr: str, shape: tuple[int, ...]) -> bytes:
    """A fixed-size v1 ``.npy`` header for ``descr``/``shape``.

    Identical layout to what :func:`numpy.lib.format.write_array_header_1_0`
    produces, except padded to the constant :data:`_NPY_HEADER_SIZE` so
    the shape can be rewritten in place after appends.
    """
    shape_repr = "(" + ", ".join(str(int(d)) for d in shape)
    shape_repr += ",)" if len(shape) == 1 else ")"
    header = (
        f"{{'descr': {descr!r}, 'fortran_order': False, "
        f"'shape': {shape_repr}, }}"
    )
    pad = _NPY_HEADER_SIZE - 10 - 1 - len(header)
    if pad < 0:  # pragma: no cover - shapes this big do not fit in RAM
        raise SnapshotError(f"npy header overflow for shape {shape}")
    body = (header + " " * pad + "\n").encode("latin-1")
    return (
        b"\x93NUMPY"
        + bytes((1, 0))
        + len(body).to_bytes(2, "little")
        + body
    )


class _NpyAppendFile:
    """One streamable ``.npy`` column: append rows, patch the header."""

    def __init__(self, path: Path, dtype: np.dtype, row_shape: tuple[int, ...]):
        self.path = path
        self.dtype = np.dtype(dtype)
        self.row_shape = row_shape
        self.rows = 0
        self._fh: IO[bytes] | None = None

    def create(self) -> None:
        self._fh = open(self.path, "wb")
        self._fh.write(
            _npy_header_bytes(self.dtype.str, (0, *self.row_shape))
        )

    def append(self, arr: np.ndarray) -> None:
        assert self._fh is not None
        data = np.ascontiguousarray(arr, dtype=self.dtype)
        if data.shape[1:] != self.row_shape:
            raise SchemaError(
                f"column {self.path.name}: chunk row shape {data.shape[1:]} "
                f"!= {self.row_shape}"
            )
        self._fh.write(data.tobytes())
        self.rows += int(data.shape[0])

    def close(self) -> None:
        if self._fh is None:
            return
        self._fh.seek(0)
        self._fh.write(
            _npy_header_bytes(self.dtype.str, (self.rows, *self.row_shape))
        )
        self._fh.close()
        self._fh = None

    @classmethod
    def reopen(cls, path: Path) -> _NpyAppendFile:
        """Open an existing column for appending (header re-read)."""
        with open(path, "rb") as fh:
            version = np.lib.format.read_magic(fh)
            if version != (1, 0):
                raise SnapshotError(
                    f"{path} has npy format version {version}; this "
                    "layout writes version (1, 0)"
                )
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            if fh.tell() != _NPY_HEADER_SIZE:
                raise SnapshotError(
                    f"{path} was not written by this layout "
                    "(unexpected header size); cannot append in place"
                )
        if fortran:
            raise SnapshotError(f"{path} is Fortran-ordered")
        out = cls(path, dtype, tuple(int(d) for d in shape[1:]))
        out.rows = int(shape[0])
        out._fh = open(path, "r+b")
        out._fh.seek(0, os.SEEK_END)
        return out


# ----------------------------------------------------------------------
# The streaming writer
# ----------------------------------------------------------------------
class StoreWriter:
    """Build (or extend) a layout chunk by chunk, bounded-memory.

    Parameters
    ----------
    path:
        Layout directory; created (parents included) unless resuming.
    schema:
        The store schema every appended chunk must match.
    with_labels:
        Reserve a ``labels.npy`` column; every append must then pass
        ``labels`` of matching length (dataset layouts).

    Chunks are validated through the normal
    :class:`~repro.records.RecordStore` coercion, so a finalized layout
    always opens to a store indistinguishable from
    ``RecordStore(schema, all_columns_at_once)``.
    """

    def __init__(
        self,
        path: str | Path,
        schema: Schema,
        with_labels: bool = False,
        vector_dims: dict[str, int] | None = None,
    ) -> None:
        self.path = Path(path)
        self.schema = schema
        self.with_labels = bool(with_labels)
        self.n = 0
        self._extras: dict[str, Any] = {}
        self._finalized = False
        self.path.mkdir(parents=True, exist_ok=True)
        if (self.path / "header.json").exists():
            raise SnapshotError(
                f"{self.path} already holds a layout; use "
                "StoreLayout.append to extend it"
            )
        self._vec_files: dict[str, _NpyAppendFile | None] = {}
        self._off_files: dict[str, _NpyAppendFile] = {}
        self._val_files: dict[str, _NpyAppendFile] = {}
        self._totals: dict[str, int] = {}
        for spec in schema:
            if spec.kind is FieldKind.VECTOR:
                # Created lazily — the width is known at the first
                # chunk — unless the caller pins it up front (the only
                # way an *empty* layout can remember its width).
                _column_filename("vec", spec.name)
                if vector_dims is not None and spec.name in vector_dims:
                    vec_file = _NpyAppendFile(
                        self.path / _column_filename("vec", spec.name),
                        np.dtype(np.float64),
                        (int(vector_dims[spec.name]),),
                    )
                    vec_file.create()
                    self._vec_files[spec.name] = vec_file
                else:
                    self._vec_files[spec.name] = None
            else:
                off = _NpyAppendFile(
                    self.path / _column_filename("shl", spec.name, "__offsets"),
                    np.dtype(np.int64),
                    (),
                )
                off.create()
                off.append(np.zeros(1, dtype=np.int64))
                val = _NpyAppendFile(
                    self.path / _column_filename("shl", spec.name, "__values"),
                    np.dtype(np.int64),
                    (),
                )
                val.create()
                self._off_files[spec.name] = off
                self._val_files[spec.name] = val
                self._totals[spec.name] = 0
        self._labels_file: _NpyAppendFile | None = None
        if self.with_labels:
            self._labels_file = _NpyAppendFile(
                self.path / "labels.npy", np.dtype(np.int64), ()
            )
            self._labels_file.create()

    # ------------------------------------------------------------------
    def append(
        self,
        columns: RecordStore | dict[str, Any],
        labels: IntArray | None = None,
    ) -> None:
        """Validate and flush one chunk of rows."""
        if self._finalized:
            raise SnapshotError("StoreWriter is finalized")
        chunk = (
            columns
            if isinstance(columns, RecordStore)
            else RecordStore(self.schema, columns)
        )
        if chunk.schema != self.schema:
            raise SchemaError("chunk schema does not match the writer's")
        if self.with_labels:
            if labels is None:
                raise SchemaError("this layout stores labels; pass labels=")
            labels = np.asarray(labels, dtype=np.int64)
            if labels.shape != (len(chunk),):
                raise SchemaError(
                    f"{labels.shape} labels for a {len(chunk)}-row chunk"
                )
        elif labels is not None:
            raise SchemaError("writer was created without with_labels=True")
        for name, vec_file in self._vec_files.items():
            mat = chunk.vectors(name)
            if vec_file is None:
                vec_file = _NpyAppendFile(
                    self.path / _column_filename("vec", name),
                    np.dtype(np.float64),
                    (int(mat.shape[1]),),
                )
                vec_file.create()
                self._vec_files[name] = vec_file
            vec_file.append(mat)
        for name, off_file in self._off_files.items():
            column = chunk.shingle_sets(name)
            sizes = column.sizes()
            offsets = np.cumsum(sizes, dtype=np.int64) + self._totals[name]
            off_file.append(offsets)
            self._val_files[name].append(column.flat)
            self._totals[name] += int(sizes.sum())
        if self._labels_file is not None and labels is not None:
            self._labels_file.append(labels)
        self.n += len(chunk)

    def add_extras(self, extras: dict[str, Any]) -> None:
        """Attach JSON-serializable metadata (rule spec, dataset name,
        generator parameters) to ``header.json``'s ``extras``."""
        self._extras.update(extras)

    def finalize(self) -> StoreLayout:
        """Patch every column header, write ``header.json``, and return
        the finished :class:`StoreLayout`."""
        if self._finalized:
            raise SnapshotError("StoreWriter is already finalized")
        self._finalized = True
        vector_dims: dict[str, int] = {}
        for name, vec_file in self._vec_files.items():
            if vec_file is None:
                vec_file = _NpyAppendFile(
                    self.path / _column_filename("vec", name),
                    np.dtype(np.float64),
                    (0,),
                )
                vec_file.create()
            vector_dims[name] = int(vec_file.row_shape[0])
            vec_file.close()
        for off_file in self._off_files.values():
            off_file.close()
        for val_file in self._val_files.values():
            val_file.close()
        if self._labels_file is not None:
            self._labels_file.close()
        header = {
            "magic": LAYOUT_MAGIC,
            "layout_version": LAYOUT_VERSION,
            "store_version": 1,
            "n": self.n,
            "schema": [
                {"name": spec.name, "kind": spec.kind.value}
                for spec in self.schema
            ],
            "vector_dims": vector_dims,
            "shingle_totals": dict(self._totals),
            "with_labels": self.with_labels,
            "extras": self._extras,
        }
        _write_header_atomic(self.path, header)
        return StoreLayout(self.path)

    def __enter__(self) -> StoreWriter:
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is None and not self._finalized:
            self.finalize()


def _write_header_atomic(path: Path, header: dict[str, Any]) -> None:
    tmp = path / "header.json.tmp"
    tmp.write_text(json.dumps(header, indent=2, sort_keys=True))
    os.replace(tmp, path / "header.json")


# ----------------------------------------------------------------------
# The layout
# ----------------------------------------------------------------------
class StoreLayout:
    """A finished on-disk columnar store directory.

    ``open()`` memory-maps the columns; ``append()`` extends them in
    place and bumps ``store_version`` (already-open stores keep their
    shorter view — layouts are append-only).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        header_path = self.path / "header.json"
        if not header_path.exists():
            raise SnapshotError(f"no store layout at {self.path}")
        header = json.loads(header_path.read_text())
        if header.get("magic") != LAYOUT_MAGIC:
            raise SnapshotError(
                f"{header_path} is not a {LAYOUT_MAGIC} header"
            )
        if int(header.get("layout_version", -1)) != LAYOUT_VERSION:
            raise SnapshotError(
                f"layout version {header.get('layout_version')!r} is not "
                f"supported (this build reads version {LAYOUT_VERSION})"
            )
        self.header = header
        self.schema = Schema(
            tuple(
                FieldSpec(f["name"], FieldKind(f["kind"]))
                for f in header["schema"]
            )
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self.header["n"])

    @property
    def store_version(self) -> int:
        return int(self.header["store_version"])

    @property
    def extras(self) -> dict[str, Any]:
        return dict(self.header.get("extras", {}))

    # ------------------------------------------------------------------
    @classmethod
    def write(
        cls,
        store: RecordStore,
        path: str | Path,
        labels: IntArray | None = None,
        extras: dict[str, Any] | None = None,
    ) -> StoreLayout:
        """One-shot: persist an in-memory store (optionally labelled)."""
        writer = StoreWriter(
            path,
            store.schema,
            with_labels=labels is not None,
            vector_dims={
                spec.name: int(store.vectors(spec.name).shape[1])
                for spec in store.schema
                if spec.kind is FieldKind.VECTOR
            },
        )
        if extras:
            writer.add_extras(extras)
        if len(store):
            writer.append(store, labels=labels)
        elif labels is not None and len(labels):
            raise SchemaError(f"{len(labels)} labels for an empty store")
        return writer.finalize()

    def _load(self, name: str, mmap: bool) -> np.ndarray:
        return np.load(
            self.path / name, mmap_mode="r" if mmap else None
        )

    def open(self, mmap: bool = True) -> RecordStore:
        """The layout's rows as a :class:`RecordStore`.

        With ``mmap=True`` (default) every column is
        ``np.load(mmap_mode="r")`` — pages fault in on first touch and
        are shared with every other process mapping the same layout.
        The store's :attr:`~repro.records.RecordStore.backing` records
        ``(path, store_version, 0, n)`` so slice views of it can be
        shipped to workers as :class:`~repro.parallel.sharing.DiskStoreRef`
        handles.  Arrays are windowed to the header's ``n``: a reader
        that raced an append sees exactly the version it opened.
        """
        n = self.n
        vectors: dict[str, Any] = {}
        shingles: dict[str, ShingleColumn] = {}
        for spec in self.schema:
            if spec.kind is FieldKind.VECTOR:
                mat = self._load(_column_filename("vec", spec.name), mmap)
                if mat.ndim != 2 or mat.dtype != np.float64:
                    raise SnapshotError(
                        f"vector column {spec.name!r} has shape "
                        f"{mat.shape} dtype {mat.dtype}"
                    )
                vectors[spec.name] = mat[:n]
            else:
                offsets = self._load(
                    _column_filename("shl", spec.name, "__offsets"), mmap
                )
                values = self._load(
                    _column_filename("shl", spec.name, "__values"), mmap
                )
                if offsets.dtype != np.int64 or values.dtype != np.int64:
                    raise SnapshotError(
                        f"shingle column {spec.name!r} is not int64"
                    )
                if offsets.shape[0] < n + 1:
                    raise SnapshotError(
                        f"shingle column {spec.name!r} has "
                        f"{offsets.shape[0]} offsets for n={n}"
                    )
                shingles[spec.name] = ShingleColumn(offsets[: n + 1], values)
        backing = StoreBacking(str(self.path), self.store_version, 0, n)
        return RecordStore._from_parts(
            self.schema, vectors, shingles, n, backing=backing
        )

    def labels(self, mmap: bool = True) -> IntArray | None:
        """The ground-truth labels column, when the layout has one."""
        if not self.header.get("with_labels"):
            return None
        return np.asarray(self._load("labels.npy", mmap)[: self.n])

    # ------------------------------------------------------------------
    def append(
        self,
        columns: RecordStore | dict[str, Any],
        labels: IntArray | None = None,
    ) -> int:
        """Append rows in place; returns the new ``store_version``.

        Cost is O(appended rows): column files are extended and their
        fixed-size headers patched, never rewritten.  Stores opened
        before the append keep serving their shorter prefix (the files
        only grow), which is exactly the generation-rollover contract
        of :class:`~repro.serve.service.ResolverService`.
        """
        chunk = (
            columns
            if isinstance(columns, RecordStore)
            else RecordStore(self.schema, columns)
        )
        if chunk.schema != self.schema:
            raise SchemaError("appended schema does not match the layout's")
        with_labels = bool(self.header.get("with_labels"))
        if with_labels:
            if labels is None:
                raise SchemaError("this layout stores labels; pass labels=")
            labels = np.asarray(labels, dtype=np.int64)
            if labels.shape != (len(chunk),):
                raise SchemaError(
                    f"{labels.shape} labels for a {len(chunk)}-row chunk"
                )
        elif labels is not None:
            raise SchemaError("layout was written without labels")
        vector_dims = dict(self.header["vector_dims"])
        totals = dict(self.header["shingle_totals"])
        for spec in self.schema:
            if spec.kind is FieldKind.VECTOR:
                mat = chunk.vectors(spec.name)
                want = int(vector_dims[spec.name])
                if self.n and int(mat.shape[1]) != want:
                    raise SchemaError(
                        f"vector field {spec.name!r} has width "
                        f"{mat.shape[1]}, layout stores {want}"
                    )
                fh = _NpyAppendFile.reopen(
                    self.path / _column_filename("vec", spec.name)
                )
                if self.n == 0 and fh.row_shape != mat.shape[1:]:
                    # First real rows decide the width of a layout that
                    # was finalized empty.
                    fh.close()
                    fh = _NpyAppendFile(
                        fh.path, np.dtype(np.float64), (int(mat.shape[1]),)
                    )
                    fh.create()
                fh.append(mat)
                fh.close()
                vector_dims[spec.name] = int(mat.shape[1])
            else:
                column = chunk.shingle_sets(spec.name)
                sizes = column.sizes()
                base = int(totals[spec.name])
                fh = _NpyAppendFile.reopen(
                    self.path / _column_filename("shl", spec.name, "__offsets")
                )
                fh.append(np.cumsum(sizes, dtype=np.int64) + base)
                fh.close()
                fh = _NpyAppendFile.reopen(
                    self.path / _column_filename("shl", spec.name, "__values")
                )
                fh.append(column.flat)
                fh.close()
                totals[spec.name] = base + int(sizes.sum())
        if with_labels and labels is not None:
            fh = _NpyAppendFile.reopen(self.path / "labels.npy")
            fh.append(labels)
            fh.close()
        self.header["n"] = self.n + len(chunk)
        self.header["store_version"] = self.store_version + 1
        self.header["vector_dims"] = vector_dims
        self.header["shingle_totals"] = totals
        _write_header_atomic(self.path, self.header)
        return self.store_version


# ----------------------------------------------------------------------
# Labelled-dataset conveniences
# ----------------------------------------------------------------------
def write_dataset_layout(dataset: "Dataset", path: str | Path) -> StoreLayout:
    """Persist a :class:`~repro.datasets.Dataset` (store + labels +
    rule spec + JSON-able info) as a layout."""
    from .io import rule_to_spec

    info = {
        key: value
        for key, value in dataset.info.items()
        if _json_safe(value)
    }
    return StoreLayout.write(
        dataset.store,
        path,
        labels=np.asarray(dataset.labels, dtype=np.int64),
        extras={
            "dataset_name": dataset.name,
            "rule": rule_to_spec(dataset.rule),
            "info": info,
        },
    )


def write_dataset_chunks(
    schema: Schema,
    chunks: Iterable[tuple[dict[str, Any] | RecordStore, IntArray]],
    path: str | Path,
    rule_spec: dict[str, Any] | None = None,
    name: str = "dataset",
    info: dict[str, Any] | None = None,
) -> StoreLayout:
    """Stream ``(columns, labels)`` chunks into a labelled layout.

    The generator-facing half of out-of-core dataset construction:
    chunks are validated, flushed, and dropped one at a time, so peak
    memory is one chunk regardless of the final row count.
    """
    writer = StoreWriter(path, schema, with_labels=True)
    writer.add_extras(
        {
            "dataset_name": name,
            "rule": rule_spec,
            "info": info or {},
        }
    )
    for columns, labels in chunks:
        writer.append(columns, labels=labels)
    return writer.finalize()


def open_dataset(path: str | Path, mmap: bool = True) -> "Dataset":
    """Open a labelled layout back into a :class:`Dataset`.

    The store is memory-mapped (see :meth:`StoreLayout.open`); the rule
    is rebuilt from the stored spec.
    """
    from .datasets.base import Dataset
    from .io import rule_from_spec

    layout = StoreLayout(path)
    labels = layout.labels(mmap=mmap)
    if labels is None:
        raise SnapshotError(
            f"layout at {path} has no labels column; open it with "
            "StoreLayout(path).open() instead"
        )
    extras = layout.extras
    rule_spec = extras.get("rule")
    if not rule_spec:
        raise SnapshotError(f"layout at {path} stores no rule spec")
    return Dataset(
        name=str(extras.get("dataset_name", layout.path.name)),
        store=layout.open(mmap=mmap),
        labels=labels,
        rule=rule_from_spec(rule_spec),
        info=dict(extras.get("info", {})),
    )


def iter_store_chunks(
    store: RecordStore, chunk_rows: int
) -> Iterator[RecordStore]:
    """Contiguous :meth:`~repro.records.RecordStore.slice_view` windows
    of ``chunk_rows`` rows (the last may be shorter)."""
    if chunk_rows < 1:
        raise SchemaError(f"chunk_rows must be >= 1, got {chunk_rows}")
    for lo in range(0, len(store), chunk_rows):
        yield store.slice_view(lo, min(lo + chunk_rows, len(store)))


def _json_safe(value: Any) -> bool:
    try:
        json.dumps(value)
    except TypeError:
        return False
    return True
