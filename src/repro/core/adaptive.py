"""Adaptive LSH — Algorithm 1 of the paper.

The algorithm maintains a pool of clusters.  Each round it selects the
largest cluster that is not yet *final* (finals are outcomes of the
last hashing function ``H_L`` or of the pairwise function ``P``),
decides between applying the next hashing function in the sequence or
jumping to ``P`` (Line 5 cost-model gate), and files the resulting
subclusters back.  It terminates when the ``k`` largest clusters are
all final and returns them.

Largest-First selection is provably cost-optimal (Theorems 1-2); the
``selection`` parameter exists so the ablation benchmarks can compare
against deliberately suboptimal strategies.

The *incremental mode* of §4.2 is :meth:`AdaptiveLSH.iter_clusters`,
which yields each final cluster the moment it is known to be the next
largest — by Theorem 2 the time-to-k'-th-cluster is optimal for every
``k' < k``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

import numpy as np

from ..distance.rules import MatchRule
from ..errors import ConfigurationError, ResolvableExceededError, SnapshotError
from ..kernels import resolve_kernels, use_kernels
from ..lsh.binindex import SchemeBinIndex, resolve_bin_index
from ..lsh.design import DesignContext, SchemeDesign, design_sequence
from ..lsh.families import SignaturePool
from ..lsh.keycache import LevelKeyCache
from ..obs import DISABLED, RoundEvent, RunObserver, RunReport
from ..obs.clock import monotonic
from ..parallel.pool import ExecutionPool, resolve_n_jobs
from ..records import RecordStore
from ..rngutil import SeedLike, make_rng
from ..structures.bin_index import BinIndex
from ..types import IntArray
from .budget import exponential_budgets
from .config import SELECTIONS, AdaptiveConfig
from .cost import CostModel
from .pairmemo import (
    MATCH,
    NO_MATCH,
    UNKNOWN,
    PairVerdictMemo,
    pack_pair_keys,
    resolve_pair_memo,
)
from .pairwise_fn import PairwiseComputation
from .result import SOURCE_PAIRWISE, Cluster, FilterResult, WorkCounters
from .transitive import TransitiveHashingFunction

_SELECTIONS = SELECTIONS


class AdaptiveLSH:
    """The adaLSH filtering method.

    Parameters
    ----------
    store, rule:
        The dataset and the match rule (distance metric(s) + threshold(s)).
    config:
        An :class:`~repro.core.config.AdaptiveConfig` holding every
        tuning knob (budgets, epsilon, seed, cost model, selection,
        jump policy, parallelism, caching); defaults apply when
        omitted.  This is the only construction surface — the
        pre-config keyword arguments were removed after a deprecation
        cycle.
    observer:
        A :class:`~repro.obs.RunObserver` to collect spans, metrics and
        round events into.  After :meth:`run`, :attr:`last_report`
        holds the serializable :class:`~repro.obs.RunReport` of the
        run.

    Notes
    -----
    ``config.n_jobs`` is the worker-process count for signature batches
    and blocked pairwise evaluation; ``None`` defers to the
    ``REPRO_N_JOBS`` environment variable (default serial).
    ``config.kernels`` selects the signature/intersection kernel
    backend the same way (``REPRO_KERNELS``, default ``"numpy"``).
    Results are bit-identical for every value of either knob.  Call
    :meth:`close` (or use the instance as a context manager) to shut
    the worker pool down.  ``config.signature_cache`` caches each
    record's packed per-level bucket keys so repeated applications of
    the same sequence function (re-runs, :meth:`refine`, incremental
    mode) skip the key packing.

    A prepared instance can be frozen to disk with
    :class:`~repro.serve.IndexSnapshot` and warm-started later through
    :meth:`adopt_prepared_state`, skipping design, calibration, and
    initial hashing entirely.
    """

    _ctx: DesignContext
    _designs: list[SchemeDesign]
    _functions: list[TransitiveHashingFunction]
    _pools: list[SignaturePool]
    _pool_baseline: int
    _level_of: IntArray
    cost_model: CostModel

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule,
        config: AdaptiveConfig | None = None,
        observer: RunObserver | None = None,
    ) -> None:
        if config is None:
            config = AdaptiveConfig()
        elif not isinstance(config, AdaptiveConfig):
            raise ConfigurationError(
                "config must be an AdaptiveConfig (the legacy keyword "
                f"arguments were removed), got {type(config).__name__}"
            )
        cfg = config
        #: The resolved :class:`AdaptiveConfig` this instance runs with.
        self.config = cfg
        self.store = store
        self.rule = rule
        self.budgets = (
            list(cfg.budgets) if cfg.budgets is not None else exponential_budgets()
        )
        self.epsilon = cfg.epsilon
        self.selection = cfg.selection
        self._rng = make_rng(cfg.seed)
        self._noise_factor = cfg.noise_factor
        self._analytic_pair_cost = cfg.analytic_pair_cost
        self._cost_model_spec = cfg.cost_model
        #: Resolved worker count; 1 means everything runs in-process.
        self.n_jobs = resolve_n_jobs(cfg.n_jobs)
        #: Resolved kernel backend name, pinned at construction so the
        #: whole run (families, verification, workers) uses one backend.
        self.kernels = resolve_kernels(cfg.kernels)
        self._exec_pool: ExecutionPool | None = (
            ExecutionPool(store, self.n_jobs) if self.n_jobs > 1 else None
        )
        #: Cross-round pair-verdict memo shared by the pairwise function
        #: and the lookahead density sampler; ``None`` when disabled.
        self._pair_memo: PairVerdictMemo | None = (
            PairVerdictMemo(max_bytes=cfg.pair_memo_bytes)
            if resolve_pair_memo(cfg.pair_memo)
            else None
        )
        self._pairwise = PairwiseComputation(
            store,
            rule,
            strategy=cfg.pairwise_strategy,
            pool=self._exec_pool,
            memo=self._pair_memo,
            kernels=self.kernels,
        )
        self._key_cache: LevelKeyCache | None = (
            LevelKeyCache(len(store)) if cfg.signature_cache else None
        )
        #: Persistent fingerprint bin index (CSR collision groups and
        #: streaming delta candidates); ``None`` when disabled.
        self._bin_index: SchemeBinIndex | None = (
            SchemeBinIndex(len(store), max_bytes=cfg.bin_index_bytes)
            if resolve_bin_index(cfg.bin_index)
            else None
        )
        self._prepared = False
        #: True when prepared state was adopted from a snapshot instead
        #: of being designed/calibrated by this instance.
        self.warm_started = False
        self.jump_policy = cfg.jump_policy
        self._lookahead_samples = cfg.lookahead_samples
        self._lookahead_density = cfg.lookahead_density
        # Observability: a caller-supplied RunObserver wins; otherwise
        # the shared no-op observer keeps the hot paths branch-only.
        self.obs = observer if observer is not None else DISABLED
        #: :class:`~repro.obs.report.RunReport` of the latest
        #: :meth:`run`/:meth:`refine` (``None`` when observability is
        #: off or before the first run).
        self.last_report: RunReport | None = None

    @property
    def trace(self) -> list[dict[str, Any]]:
        """Back-compat view of the structured round events.

        Returns the pre-observability schema: one dict per round with
        ``round``, ``action``, ``size``, ``from_level``,
        ``subclusters`` and ``largest_out`` keys.  The structured
        events themselves (with per-round wall-time and cost-model
        predictions) live in ``self.obs.rounds``.
        """
        return [event.legacy_dict() for event in self.obs.rounds]

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Design the function sequence and the cost model (idempotent).

        Done lazily so constructing the object is cheap; the first
        :meth:`run` pays for scheme design once, and later runs (other
        ``k`` values, incremental mode) reuse designs and hash pools.
        """
        if self._prepared:
            return
        if len(self.store) == 0:
            raise ConfigurationError(
                "cannot filter an empty record store: no clusters exist"
            )
        with self.obs.span("adaLSH.prepare"):
            self._prepare()

    def _prepare(self) -> None:
        # Families pin their kernel backend at construction, so design
        # (which builds them) and calibration run under this method's
        # resolved selection.
        with use_kernels(self.kernels):
            self._ctx, self._designs = design_sequence(
                self.store,
                self.rule,
                self.budgets,
                epsilon=self.epsilon,
                seed=self._rng,
            )
            self.cost_model = self._resolve_cost_model()
        self._install_prepared_state()

    def _resolve_cost_model(self) -> CostModel:
        spec = self._cost_model_spec
        if isinstance(spec, CostModel):
            return spec
        if spec == "analytic":
            return CostModel.from_budgets(
                [d.spent_budget for d in self._designs],
                cost_p=self._analytic_pair_cost,
                noise_factor=self._noise_factor,
            )
        if spec == "calibrate":
            return CostModel.calibrate(
                self.store,
                self.rule,
                self._designs,
                noise_factor=self._noise_factor,
                seed=self._rng,
            )
        raise ConfigurationError(  # pragma: no cover - guarded by AdaptiveConfig
            f"cost_model must be 'calibrate', 'analytic', or a CostModel, "
            f"got {spec!r}"
        )

    def _install_prepared_state(self) -> None:
        """Wire functions, pools, observer, executor, and key cache from
        ``self._ctx`` / ``self._designs`` / ``self.cost_model`` — the
        shared tail of cold :meth:`_prepare` and warm
        :meth:`adopt_prepared_state`."""
        self._functions = [
            TransitiveHashingFunction(level + 1, design)
            for level, design in enumerate(self._designs)
        ]
        self._pools = [
            comp.pool for branch in self._ctx.branches for comp in branch
        ]
        # Hand the hot-path collaborators the run observer; with the
        # shared no-op observer this only sets an attribute once.
        self._pairwise.observer = self.obs
        for pool in self._pools:
            pool.observer = self.obs
        if self._exec_pool is not None:
            self._exec_pool.observer = self.obs
            for pool in self._pools:
                pool.executor = self._exec_pool
                # Registered before the first fork so workers inherit
                # the family objects (parameters included) for free.
                self._exec_pool.register_family(pool.family)
        if self._key_cache is not None:
            self._key_cache.observer = self.obs
            for fn in self._functions:
                fn.key_cache = self._key_cache.entry(fn.level)
        if self._bin_index is not None:
            self._bin_index.observer = self.obs
            for fn in self._functions:
                fn.bin_index = self._bin_index.level(fn.level)
        if self._pair_memo is not None:
            self._pair_memo.observer = self.obs
            # Establish (or re-validate) the memo's (store, rule)
            # binding; remembered verdicts survive exactly when both
            # fingerprints still match.
            self._pair_memo.bind(self.store, self.rule)
        self._prepared = True

    def adopt_prepared_state(
        self,
        ctx: DesignContext,
        designs: Sequence[SchemeDesign],
        cost_model: CostModel,
        rng: SeedLike = None,
    ) -> None:
        """Warm-start: adopt externally rebuilt prepared state.

        Used by :meth:`repro.serve.IndexSnapshot.restore` — ``ctx``
        carries pools whose family parameters and signature columns
        were loaded from a snapshot, ``designs`` the captured
        ``(w, z)`` solutions, and ``rng`` the captured stream position.
        After this, :meth:`prepare` is a no-op (no design, no
        calibration, no ``adaLSH.prepare`` span), and :meth:`run` is
        bit-identical to the run the snapshot was captured from.
        """
        if self._prepared:
            raise SnapshotError(
                "cannot adopt prepared state: this instance is already prepared"
            )
        self._ctx = ctx
        self._designs = list(designs)
        self.cost_model = cost_model
        if rng is not None:
            self._rng = make_rng(rng)
        with self.obs.span("adaLSH.restore"):
            self._install_prepared_state()
        self.warm_started = True

    @property
    def pair_memo(self) -> PairVerdictMemo | None:
        """The pair-verdict memo, or ``None`` when memoization is off."""
        return self._pair_memo

    @property
    def bin_index(self) -> SchemeBinIndex | None:
        """The fingerprint bin index, or ``None`` when disabled."""
        return self._bin_index

    def adopt_pair_memo(self, memo: PairVerdictMemo | None) -> None:
        """Transfer a pair-verdict memo from a prior method instance.

        Used by :meth:`repro.serve.ResolverSession.extend_store`, where
        a snapshot restore builds a fresh method over the extended
        store: re-binding keeps every remembered verdict when the old
        store is a byte-identical prefix of the new one, and clears the
        memo otherwise — the verdicts stay correct either way.
        """
        self._pair_memo = memo
        self._pairwise.memo = memo
        if memo is not None:
            memo.observer = self.obs
            memo.bind(self.store, self.rule)

    def close(self) -> None:
        """Shut down the worker pool (no-op when running serial)."""
        if self._exec_pool is not None:
            self._exec_pool.close()

    def __enter__(self) -> AdaptiveLSH:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def last_level(self) -> int:
        return len(self.budgets)

    # ------------------------------------------------------------------
    def run(self, k: int) -> FilterResult:
        """Run the filter and return the top-``k`` clusters.

        Scheme design and cost-model calibration are offline per the
        paper ("the whole function sequence design process is run
        offline", App. C.4), so they happen before the clock starts.
        """
        obs = self.obs
        if obs.enabled:
            obs.reset()
        self.prepare()
        finals: list[Cluster] = []
        started = monotonic()
        counters = WorkCounters()
        with obs.span("adaLSH.run", k=k):
            for cluster in self._iter_final_clusters(k, counters):
                finals.append(cluster)
        wall = monotonic() - started
        counters.merge_pool_counts(self._pools)
        counters.hashes_computed -= self._pool_baseline
        info: dict[str, Any] = {
            "method": "adaLSH",
            "budgets": [d.spent_budget for d in self._designs],
            "designs": [d.describe() for d in self._designs],
            "selection": self.selection,
            "records_per_level": counters.records_per_level,
        }
        self._add_execution_info(info)
        if obs.enabled:
            self.last_report = self._build_report("adaLSH", k, wall, counters, info)
        return FilterResult.from_clusters(finals, counters, wall, info=info)

    def _build_report(
        self,
        method: str,
        k: int,
        wall: float,
        counters: WorkCounters,
        info: dict[str, Any],
    ) -> RunReport:
        # String keys everywhere: JSON object keys are strings, and the
        # report must round-trip losslessly through to_json/from_json.
        per_level = {
            str(level): n for level, n in counters.records_per_level.items()
        }
        info = {key: value for key, value in info.items() if key != "designs"}
        if "records_per_level" in info:
            info["records_per_level"] = per_level
        return self.obs.build_report(
            method=method,
            k=k,
            wall_time=wall,
            counters={
                "hashes_computed": counters.hashes_computed,
                "pairs_compared": counters.pairs_compared,
                "pairs_charged": counters.pairs_charged,
                "table_inserts": counters.table_inserts,
                "rounds": counters.rounds,
                "records_per_level": per_level,
            },
            cost_model=self.cost_model.to_dict(),
            hash_pools=[pool.stats() for pool in self._pools],
            info=info,
        )

    def _add_execution_info(self, info: dict[str, Any]) -> None:
        """Attach pool/cache execution stats to a result info dict."""
        info["kernels"] = self.kernels
        if self._exec_pool is not None:
            info["parallel"] = self._exec_pool.stats()
        if self._key_cache is not None:
            info["signature_cache"] = self._key_cache.stats()
        if self._pair_memo is not None:
            info["memoized_pairs"] = self._pair_memo.stats()
        if self._bin_index is not None:
            info["bin_index"] = self._bin_index.stats()
        backing = self.store.backing
        if backing is not None:
            info["store_backing"] = {
                "path": backing.path,
                "store_version": int(backing.store_version),
                "lo": int(backing.lo),
                "hi": int(backing.hi),
            }

    def iter_clusters(self, k: int) -> Iterator[Cluster]:
        """Incremental mode (§4.2): yield final clusters one by one,
        largest first, as soon as each is known."""
        counters = WorkCounters()
        yield from self._iter_final_clusters(k, counters)

    def refine(
        self,
        initial_clusters: Iterable[tuple[Any, int]],
        k: int,
    ) -> FilterResult:
        """Run the Largest-First loop over externally produced clusters.

        ``initial_clusters`` are ``(rids, level)`` pairs — clusters that
        have already had sequence function ``H_level`` applied (e.g. by
        the streaming front-end).  Hash signatures cached in the shared
        pools are reused, so refinement is incremental.
        """
        obs = self.obs
        if obs.enabled:
            obs.reset()
        self.prepare()
        started = monotonic()
        counters = WorkCounters()
        initial = [
            Cluster(np.asarray(rids, dtype=np.int64), int(level))
            for rids, level in initial_clusters
        ]
        with obs.span("adaLSH.refine", k=k):
            finals = list(self._iter_final_clusters(k, counters, initial=initial))
        wall = monotonic() - started
        counters.merge_pool_counts(self._pools)
        counters.hashes_computed -= self._pool_baseline
        info: dict[str, Any] = {"method": "adaLSH.refine"}
        self._add_execution_info(info)
        if obs.enabled:
            self.last_report = self._build_report(
                "adaLSH.refine", k, wall, counters, info
            )
        return FilterResult.from_clusters(finals, counters, wall, info=info)

    # ------------------------------------------------------------------
    def _iter_final_clusters(
        self,
        k: int,
        counters: WorkCounters,
        initial: list[Cluster] | None = None,
    ) -> Iterator[Cluster]:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if len(self.store) == 0:
            raise ConfigurationError(
                "cannot filter an empty record store: no clusters exist"
            )
        self.prepare()
        self._pool_baseline = sum(p.hashes_computed for p in self._pools)
        self.obs.reset_rounds()
        self._level_of = np.zeros(len(self.store), dtype=np.int64)
        if initial is None:
            first_clusters = self._apply_function(1, self.store.rids, counters)
        else:
            first_clusters = initial
            for cluster in initial:
                if cluster.source != SOURCE_PAIRWISE:
                    self._level_of[cluster.rids] = int(cluster.source)
        if self.selection == "largest":
            yield from self._loop_largest_first(first_clusters, k, counters)
        else:
            yield from self._loop_generic(first_clusters, k, counters)
        counters.records_per_level = self._level_histogram()

    def _level_histogram(self) -> dict[int, int]:
        values, counts = np.unique(self._level_of, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def _apply_function(
        self, level: int, rids: IntArray, counters: WorkCounters
    ) -> list[Cluster]:
        """Apply ``H_level`` on ``rids`` and wrap the output clusters."""
        fn = self._functions[level - 1]
        self._level_of[rids] = level
        parts = fn.apply(rids, counters, observer=self.obs)
        return [Cluster(part, level) for part in parts]

    def _apply_pairwise(self, rids: IntArray, counters: WorkCounters) -> list[Cluster]:
        parts = self._pairwise.apply(rids, counters)
        return [Cluster(part, SOURCE_PAIRWISE) for part in parts]

    def _estimate_density(self, rids: IntArray, counters: WorkCounters) -> float:
        """Sampled match density of a cluster (Appendix D.2 lookahead).

        Draws up to ``lookahead_samples`` random record pairs and
        returns the fraction that match; sampled comparisons are
        charged to the work counters like any pairwise work.
        """
        m = rids.size
        samples = min(self._lookahead_samples, m * (m - 1) // 2)
        if samples <= 0:
            return 1.0
        left = rids[self._rng.integers(0, m, size=samples)]
        right = rids[self._rng.integers(0, m, size=samples)]
        distinct = left != right
        if not distinct.any():
            return 1.0
        sampled_a = left[distinct]
        sampled_b = right[distinct]
        total = int(distinct.sum())
        memo = self._pair_memo
        if memo is not None and not memo.disabled:
            keys = pack_pair_keys(sampled_a, sampled_b)
            verdicts = memo.lookup(keys)
            unknown = np.nonzero(verdicts == UNKNOWN)[0]
            if unknown.size:
                with use_kernels(self.kernels):
                    fresh = self.rule.match_pairs(
                        self.store, sampled_a[unknown], sampled_b[unknown]
                    )
                memo.record(keys[unknown], fresh)
                verdicts[unknown] = np.where(fresh, MATCH, NO_MATCH)
            hits = int(np.count_nonzero(verdicts == MATCH))
            counters.pairs_compared += int(unknown.size)
            return hits / total
        with use_kernels(self.kernels):
            matched = self.rule.match_pairs(self.store, sampled_a, sampled_b)
        counters.pairs_compared += total
        return int(np.count_nonzero(matched)) / total

    def _lookahead_says_jump(
        self, level: int, cluster: Cluster, counters: WorkCounters
    ) -> bool:
        """Appendix D.2: jump straight to P on a cluster that likely
        will not split — for a dense cluster the ladder ends at H_L (or
        a later Line-5 jump) anyway, so P now wins whenever it is
        cheaper than the *whole remaining* ladder."""
        if cluster.size < 8:
            return False
        remaining_ladder = (
            self.cost_model.cost_level(self.last_level)
            - self.cost_model.cost_level(level)
        ) * cluster.size
        if self.cost_model.pairwise_cost(cluster.size) >= remaining_ladder:
            return False
        return (
            self._estimate_density(cluster.rids, counters)
            >= self._lookahead_density
        )

    def _process(self, cluster: Cluster, counters: WorkCounters) -> list[Cluster]:
        """One round's work on a selected non-final cluster."""
        level = int(cluster.source)
        # Line 5: jump to P when the marginal hashing cost of upgrading
        # the whole cluster exceeds the estimated full pairwise cost —
        # or when the sequence is exhausted.
        jump = level >= self.last_level or self.cost_model.should_jump_to_pairwise(
            level, cluster.size
        )
        if not jump and self.jump_policy == "lookahead":
            jump = self._lookahead_says_jump(level, cluster, counters)
        obs = self.obs
        if not obs.enabled:
            # Uninstrumented fast path: no timing, no event objects.
            if jump:
                return self._apply_pairwise(cluster.rids, counters)
            return self._apply_function(level + 1, cluster.rids, counters)
        action = "P" if jump else f"H{level + 1}"
        predicted = self.cost_model.predicted_action_cost(level, cluster.size, jump)
        with obs.span("round", n=counters.rounds, action=action, size=cluster.size):
            started = monotonic()
            if jump:
                out = self._apply_pairwise(cluster.rids, counters)
            else:
                out = self._apply_function(level + 1, cluster.rids, counters)
            elapsed = monotonic() - started
        obs.record_round(
            RoundEvent(
                round=counters.rounds,
                action=action,
                size=cluster.size,
                from_level=level,
                subclusters=len(out),
                largest_out=max(c.size for c in out),
                wall_time=elapsed,
                predicted_cost=predicted,
                jump=jump,
            )
        )
        obs.histogram(
            "round.pairwise_seconds" if jump else "round.hash_seconds"
        ).observe(elapsed)
        return out

    # ------------------------------------------------------------------
    def _loop_largest_first(
        self, clusters: list[Cluster], k: int, counters: WorkCounters
    ) -> Iterator[Cluster]:
        """Optimized Largest-First loop (Appendix B.4/B.5 structures)."""
        bins: BinIndex[Cluster] = BinIndex()
        for cluster in clusters:
            bins.add(cluster, cluster.size)
        emitted = 0
        while bins and emitted < k:
            _size, cluster = bins.pop_largest()
            if cluster.is_final(self.last_level):
                # B.5: the largest remaining cluster is final, hence it
                # is the next of the top-k overall.
                emitted += 1
                yield cluster
                continue
            counters.rounds += 1
            for sub in self._process(cluster, counters):
                bins.add(sub, sub.size)
        if emitted < k:
            raise ResolvableExceededError(k, emitted)

    def _loop_generic(
        self, clusters: list[Cluster], k: int, counters: WorkCounters
    ) -> Iterator[Cluster]:
        """Reference loop for alternative selection strategies.

        Uses the paper's Line 11 termination directly: stop when the
        ``k`` largest clusters overall are all final.
        """
        pool = list(clusters)
        while True:
            pool.sort(key=lambda c: c.size, reverse=True)
            top = pool[:k]
            if all(c.is_final(self.last_level) for c in top):
                if len(top) < k:
                    raise ResolvableExceededError(k, len(top))
                yield from top
                return
            candidates = [
                i for i, c in enumerate(pool) if not c.is_final(self.last_level)
            ]
            if self.selection == "smallest":
                pick = candidates[-1]
            elif self.selection == "random":
                pick = candidates[int(self._rng.integers(len(candidates)))]
            elif self.selection == "largest-unoptimized":
                # Same rule as "largest" but through this reference loop;
                # used by tests to cross-check the BinIndex fast path.
                pick = candidates[0]
            else:  # pragma: no cover - guarded in __init__
                raise AssertionError(self.selection)
            cluster = pool.pop(pick)
            counters.rounds += 1
            pool.extend(self._process(cluster, counters))


def adaptive_filter(
    store: RecordStore,
    rule: MatchRule,
    k: int,
    config: AdaptiveConfig | None = None,
    observer: RunObserver | None = None,
) -> FilterResult:
    """One-shot convenience wrapper around :class:`AdaptiveLSH`."""
    with AdaptiveLSH(store, rule, config=config, observer=observer) as method:
        return method.run(k)
