"""Transitive hashing functions (paper Definition 1, Appendix B.2).

Applying a function on a set of records builds *fresh* hash tables
(so clusters from different invocations can never merge), inserts every
record into each table, unions records sharing a bucket through the
parent-pointer forest, and outputs one cluster per connected component.

Hash *values* are nevertheless reused across invocations and across
functions in the sequence, because they live in the shared
:class:`~repro.lsh.families.SignaturePool` objects referenced by the
function's scheme (Property 4 — incremental computation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..lsh.design import SchemeDesign
from ..lsh.scheme import HashingScheme
from ..structures.parent_pointer_tree import ParentPointerForest
from ..structures.union_find import ClusterUnionFind
from ..types import ArrayLike, IntArray
from .result import WorkCounters

if TYPE_CHECKING:
    from ..lsh.binindex import LevelBins
    from ..lsh.keycache import LevelEntry
    from ..obs.observer import RunObserver


class TransitiveHashingFunction:
    """One function ``H_i`` of the sequence."""

    def __init__(self, level: int, design: SchemeDesign) -> None:
        self.level = level
        self.design = design
        self.scheme: HashingScheme = design.to_scheme()
        #: Optional :class:`~repro.lsh.keycache.LevelEntry` holding this
        #: level's packed bucket keys per record; set by ``AdaptiveLSH``
        #: so re-applying ``H_level`` to subclusters reuses key rows.
        self.key_cache: LevelEntry | None = None
        #: Optional :class:`~repro.lsh.binindex.LevelBins` — when set
        #: (by ``AdaptiveLSH``), collision groups come from the
        #: fingerprint bin index as CSR arrays and unions run through
        #: the vectorized :class:`ClusterUnionFind` walk.  Both paths
        #: are bit-identical in content and cluster order.
        self.bin_index: LevelBins | None = None

    @property
    def budget(self) -> int:
        """Hash functions this scheme applies per (fresh) record."""
        return self.design.spent_budget

    def apply(
        self,
        rids: ArrayLike,
        counters: WorkCounters | None = None,
        observer: RunObserver | None = None,
    ) -> list[IntArray]:
        """Split ``rids`` into clusters (connected components of the
        same-bucket graph across all tables).

        ``observer`` (an enabled
        :class:`~repro.obs.observer.RunObserver`) is forwarded to the
        scheme so per-table grouping work lands in the run metrics.
        """
        rids = np.asarray(rids, dtype=np.int64)
        if self.bin_index is not None:
            return self._apply_binned(rids, counters)
        forest = ParentPointerForest()
        int_rids: list[int] = rids.tolist()
        for rid in int_rids:
            forest.make_singleton(rid)
        inserts = 0
        # Buckets are fresh per table, per invocation (App. B.2); the
        # scheme yields, for each table, the groups of rows that landed
        # in the same bucket, and group members get unioned.
        for collision_groups in self.scheme.iter_table_collisions(
            rids, observer=observer, key_cache=self.key_cache
        ):
            for rows in collision_groups:
                anchor = int_rids[int(rows[0])]
                for pos in rows[1:]:
                    forest.union_records(anchor, int_rids[int(pos)])
            inserts += len(int_rids)
        if counters is not None:
            counters.table_inserts += inserts
        return [
            np.fromiter(
                ParentPointerForest.leaves(root), dtype=np.int64, count=root.n_leaves
            )
            for root in forest.roots()
        ]

    def _apply_binned(
        self, rids: IntArray, counters: WorkCounters | None
    ) -> list[IntArray]:
        """CSR fast path: union whole per-table edge arrays.

        Each CSR group expands to the exact edge sequence the forest
        loop replays — ``(head, member)`` for every non-head member, in
        group yield order — and :class:`ClusterUnionFind` reproduces
        the forest's merge rule and cluster emission order, so the
        output arrays are byte-identical to the legacy path's.
        """
        assert self.bin_index is not None
        cuf = ClusterUnionFind(int(rids.size))
        inserts = 0
        for members, starts in self.bin_index.iter_table_groups(
            self.scheme, rids, key_cache=self.key_cache
        ):
            if starts.size > 1:
                lens = np.diff(starts)
                anchors = np.repeat(members[starts[:-1]], lens - 1)
                head_mask = np.zeros(members.size, dtype=bool)
                head_mask[starts[:-1]] = True
                cuf.union_edges(anchors, members[~head_mask])
            inserts += int(rids.size)
        if counters is not None:
            counters.table_inserts += inserts
        return [rids[part] for part in cuf.clusters()]
