"""Result types shared by the filtering methods: clusters, work
counters, and the :class:`FilterResult` that every method returns."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..types import IntArray

#: Source tag for clusters produced by the pairwise computation P.
SOURCE_PAIRWISE = "P"


@dataclass
class Cluster:
    """A cluster of record ids plus which function produced it.

    ``source`` is the 1-based sequence number of the transitive hashing
    function that produced the cluster, or :data:`SOURCE_PAIRWISE`.
    """

    rids: IntArray
    source: int | str

    @property
    def size(self) -> int:
        return int(self.rids.size)

    def is_final(self, last_level: int) -> bool:
        """Final clusters are outcomes of ``H_L`` or ``P`` (§4.1)."""
        return self.source == SOURCE_PAIRWISE or self.source == last_level


@dataclass
class WorkCounters:
    """Implementation-independent work performed by a filtering run.

    ``pairs_charged`` is the conservative cost-model view of pairwise
    work (all pairs of every set handed to ``P``); ``pairs_compared``
    counts distance evaluations actually performed after the
    transitive-closure skipping optimization.
    """

    hashes_computed: int = 0
    pairs_compared: int = 0
    pairs_charged: int = 0
    table_inserts: int = 0
    rounds: int = 0
    #: records whose deepest processing was sequence function i (1-based
    #: index into the list; index 0 = only H_1 was applied).
    records_per_level: dict[int, int] = field(default_factory=dict)

    def merge_pool_counts(self, pools: Iterable[Any]) -> None:
        """Refresh ``hashes_computed`` from the signature pools."""
        self.hashes_computed = sum(p.hashes_computed for p in pools)


@dataclass
class FilterResult:
    """Output of a filtering method (the paper's Figure 1 stage)."""

    #: Top-k clusters, largest first, as arrays of record ids.
    clusters: list[Cluster]
    #: Union of all cluster members.
    output_rids: IntArray
    #: Work performed.
    counters: WorkCounters
    #: Wall-clock execution time in seconds (FilteringTime).
    wall_time: float
    #: Free-form per-method metadata (designs used, budgets, ...).
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def k(self) -> int:
        return len(self.clusters)

    @property
    def output_size(self) -> int:
        return int(self.output_rids.size)

    # -- typed views over the documented ``info`` keys (docs/API.md) ----
    @property
    def parallel_stats(self) -> dict[str, Any] | None:
        """Execution-pool statistics (``info["parallel"]``), or ``None``
        when the producing run was serial."""
        return self.info.get("parallel")

    @property
    def signature_cache_stats(self) -> dict[str, Any] | None:
        """Key-cache statistics (``info["signature_cache"]``), or
        ``None`` when the cache was disabled."""
        return self.info.get("signature_cache")

    @property
    def designed_sequence(self) -> list[str] | None:
        """Human-readable per-level designs (``info["designs"]``), or
        ``None`` for methods that do not design a sequence."""
        return self.info.get("designs")

    @property
    def serving_stats(self) -> dict[str, Any] | None:
        """Serving-session counters (``info["serving"]``), or ``None``
        outside a :class:`~repro.serve.ResolverSession`."""
        return self.info.get("serving")

    @property
    def pair_memo_stats(self) -> dict[str, Any] | None:
        """Pair-verdict memo statistics (``info["memoized_pairs"]``),
        or ``None`` when memoization was disabled."""
        return self.info.get("memoized_pairs")

    @property
    def bin_index_stats(self) -> dict[str, Any] | None:
        """Fingerprint bin-index statistics (``info["bin_index"]``),
        or ``None`` when the bin index was disabled."""
        return self.info.get("bin_index")

    @staticmethod
    def from_clusters(
        clusters: Sequence[Cluster],
        counters: WorkCounters,
        wall_time: float,
        info: dict[str, Any] | None = None,
    ) -> FilterResult:
        """Build a result from raw rid arrays, ordering by size."""
        ordered = sorted(clusters, key=lambda c: c.size, reverse=True)
        if ordered:
            union = np.unique(np.concatenate([c.rids for c in ordered]))
        else:
            union = np.zeros(0, dtype=np.int64)
        return FilterResult(
            clusters=ordered,
            output_rids=union,
            counters=counters,
            wall_time=wall_time,
            info=info or {},
        )
