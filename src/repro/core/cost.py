"""The cost model (paper Definition 3) and its calibration.

Costs:

* applying sequence function ``H_i`` on a set ``S`` costs
  ``cost_i * |S|``;
* upgrading a record from ``H_j`` to ``H_i`` costs ``cost_i - cost_j``
  (incremental computation);
* applying the pairwise function ``P`` on ``S`` costs
  ``cost_P * C(|S|, 2)``.

``cost_i`` is proportional to the function's hash budget, with the
per-hash constant calibrated by timing a sample of real hash
computations; ``cost_P`` is calibrated by timing a sample of record
pairs (the paper estimates both "using 100 samples each", App. E.2).

The Appendix E.2 noise experiment multiplies the model's ``cost_P``
estimate by a noise factor ``nf``: values below 1 under-estimate the
pairwise cost (so ``P`` fires sooner, on larger clusters), values above
1 defer ``P`` to smaller clusters.

Calibration reads the clock through :func:`repro.obs.clock.monotonic`
(the library's single wall-clock funnel, rule R2), so the model's unit
— seconds — is the same unit every observability measurement uses.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..distance.rules import MatchRule
from ..errors import CalibrationError
from ..obs.clock import monotonic
from ..records import RecordStore
from ..rngutil import SeedLike, make_rng

if TYPE_CHECKING:
    from ..lsh.design import SchemeDesign

#: Sample size used for calibration (paper Appendix E.2).
CALIBRATION_SAMPLES = 100


@dataclass
class CostModel:
    """Per-record hashing costs and per-pair comparison cost.

    ``level_costs[i]`` is ``cost_{i+1}`` — the cumulative per-record
    cost of sequence function ``H_{i+1}`` (1-based in the paper).
    """

    level_costs: list[float]
    cost_p: float
    noise_factor: float = 1.0
    info: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.level_costs:
            raise CalibrationError("cost model needs at least one level cost")
        if any(
            b < a for a, b in zip(self.level_costs, self.level_costs[1:])
        ):
            raise CalibrationError(
                f"level costs must be non-decreasing: {self.level_costs}"
            )
        if self.cost_p <= 0.0:
            raise CalibrationError(f"cost_p must be positive, got {self.cost_p}")

    @property
    def levels(self) -> int:
        return len(self.level_costs)

    def cost_level(self, level: int) -> float:
        """``cost_i`` for 1-based sequence level ``i``."""
        return float(self.level_costs[level - 1])

    def marginal_hash_cost(self, from_level: int, size: int) -> float:
        """Cost of upgrading ``size`` records from ``H_t`` to ``H_{t+1}``."""
        step = self.cost_level(from_level + 1) - self.cost_level(from_level)
        return step * size

    def pairwise_cost(self, size: int) -> float:
        """Estimated cost of ``P`` on a cluster of ``size`` records,
        including the E.2 noise factor."""
        pairs = size * (size - 1) / 2.0
        return self.cost_p * self.noise_factor * pairs

    def should_jump_to_pairwise(self, from_level: int, size: int) -> bool:
        """Line 5 of Algorithm 1."""
        return self.marginal_hash_cost(from_level, size) >= self.pairwise_cost(size)

    def predicted_action_cost(self, from_level: int, size: int, jump: bool) -> float:
        """The model's estimate for the action a round chose.

        This is the prediction the observability layer pairs with the
        measured wall-time of the same action to compute
        prediction-vs-actual residuals (calibrated models predict in
        seconds, analytic models in abstract work units).
        """
        if jump:
            return self.pairwise_cost(size)
        return self.marginal_hash_cost(from_level, size)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view for run reports."""
        return {
            "level_costs": [float(c) for c in self.level_costs],
            "cost_p": float(self.cost_p),
            "noise_factor": float(self.noise_factor),
            "info": dict(self.info),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> CostModel:
        """Rebuild a model from :meth:`to_dict` output (snapshot restore)."""
        return cls(
            [float(c) for c in data["level_costs"]],
            float(data["cost_p"]),
            float(data.get("noise_factor", 1.0)),
            dict(data.get("info", {})),
        )

    def with_noise(self, noise_factor: float) -> CostModel:
        """A copy of this model with a different E.2 noise factor.

        Used by the noise-sensitivity experiment so every noise level
        perturbs the *same* calibrated constants.
        """
        return CostModel(
            list(self.level_costs), self.cost_p, noise_factor, dict(self.info)
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_budgets(
        cls,
        budgets: Sequence[int | float],
        cost_per_hash: float = 1.0,
        cost_p: float = 20.0,
        noise_factor: float = 1.0,
    ) -> CostModel:
        """Analytic model: ``cost_i = cost_per_hash * budget_i``.

        Deterministic — used by tests and by callers who prefer counted
        work over wall-clock calibration.
        """
        levels = [cost_per_hash * float(b) for b in budgets]
        return cls(levels, cost_p, noise_factor, info={"mode": "analytic"})

    @classmethod
    def calibrate(
        cls,
        store: RecordStore,
        rule: MatchRule,
        designs: Sequence[SchemeDesign],
        noise_factor: float = 1.0,
        samples: int = CALIBRATION_SAMPLES,
        seed: SeedLike = None,
    ) -> CostModel:
        """Measure per-hash and per-pair costs on a record sample.

        ``designs`` is the sequence of
        :class:`~repro.lsh.design.SchemeDesign` (their ``spent_budget``
        defines each level's hash count).  Calibration builds throwaway
        hash families so the production signature pools stay cold.
        """
        if len(store) < 2:
            raise CalibrationError("need at least two records to calibrate")
        rng = make_rng(seed)
        sample = rng.choice(len(store), size=min(samples, len(store)), replace=False)
        sample = np.asarray(sorted(int(s) for s in sample), dtype=np.int64)

        # --- per-hash cost: time a fixed number of fresh hash values on
        # the sample through each leaf family of the rule.  The minimum
        # over repeats filters out scheduler/warmup noise — a wobbly
        # cost model flips Line-5 decisions run to run.
        hash_count = 64
        repeats = 5
        families = [dist.make_family(store, seed=rng) for dist in rule.field_distances()]
        best = float(np.inf)
        for _ in range(repeats):
            t0 = monotonic()
            for family in families:
                family.compute(sample, 0, hash_count)
            best = min(best, monotonic() - t0)
        per_hash = best / max(sample.size * hash_count * len(families), 1)

        # --- per-pair cost: time block-matrix evaluations, the way
        # PairwiseComputation actually evaluates pairs.  Calibrating
        # with scalar is_match calls would overestimate cost_P by the
        # Python call overhead and defer P far past its real break-even.
        rows = rng.choice(
            len(store), size=min(samples, len(store)), replace=False
        ).astype(np.int64)
        candidates = rng.choice(
            len(store), size=min(samples, len(store)), replace=False
        ).astype(np.int64)
        best = float(np.inf)
        for _ in range(5):
            t0 = monotonic()
            rule.match_block(store, rows, candidates)
            best = min(best, monotonic() - t0)
        evaluated = rows.size * candidates.size
        if evaluated == 0:
            raise CalibrationError("pair sample is empty")
        per_pair = best / evaluated

        levels = [per_hash * d.spent_budget for d in designs]
        return cls(
            levels,
            per_pair,
            noise_factor,
            info={
                "mode": "calibrated",
                "per_hash": per_hash,
                "per_pair": per_pair,
                "samples": int(sample.size),
            },
        )
