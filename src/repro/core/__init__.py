"""The paper's primary contribution: Adaptive LSH (Algorithm 1) and its
building blocks — transitive hashing functions, the pairwise
computation function, the cost model, and budget schedules."""

from .adaptive import AdaptiveLSH, adaptive_filter
from .budget import exponential_budgets, linear_budgets
from .config import AdaptiveConfig
from .cost import CostModel
from .pairmemo import PairVerdictMemo, resolve_pair_memo
from .pairwise_fn import PairwiseComputation
from .planning import WorkEstimate, predict_filter_work
from .result import Cluster, FilterResult, WorkCounters
from .transitive import TransitiveHashingFunction

__all__ = [
    "AdaptiveLSH",
    "AdaptiveConfig",
    "adaptive_filter",
    "TransitiveHashingFunction",
    "PairwiseComputation",
    "PairVerdictMemo",
    "resolve_pair_memo",
    "CostModel",
    "predict_filter_work",
    "WorkEstimate",
    "exponential_budgets",
    "linear_budgets",
    "Cluster",
    "FilterResult",
    "WorkCounters",
]
