"""Budget schedules for the function sequence (paper §5.2).

Two strategies:

* **Exponential** — each function's hash budget multiplies the previous
  one (the paper's default: start at 20, double each time);
* **Linear** — each function adds a constant number of hash functions
  (``lin320``, ``lin640``, ``lin1280`` in Appendix E.2).
"""

from __future__ import annotations

from ..errors import ConfigurationError

#: Paper default: first function applies 20 hash functions, doubling.
DEFAULT_START = 20
DEFAULT_FACTOR = 2.0
#: Ten exponential levels reach 20 * 2^9 = 10240 hash functions, past
#: the largest LSH-X variation the paper sweeps (5120).
DEFAULT_LENGTH = 10


def exponential_budgets(
    start: int = DEFAULT_START,
    factor: float = DEFAULT_FACTOR,
    length: int = DEFAULT_LENGTH,
) -> list[int]:
    """Exponential schedule: ``start, start*factor, start*factor^2...``."""
    if start < 1 or factor <= 1.0 or length < 1:
        raise ConfigurationError(
            f"invalid exponential schedule (start={start}, factor={factor}, "
            f"length={length})"
        )
    budgets: list[int] = []
    value = float(start)
    for _ in range(length):
        budgets.append(int(round(value)))
        value *= factor
    return budgets


def linear_budgets(start: int, step: int | None = None, length: int = DEFAULT_LENGTH) -> list[int]:
    """Linear schedule: ``start, start+step, start+2*step, ...``.

    The paper's ``linX`` modes use ``step == start``.
    """
    if step is None:
        step = start
    if start < 1 or step < 1 or length < 1:
        raise ConfigurationError(
            f"invalid linear schedule (start={start}, step={step}, "
            f"length={length})"
        )
    return [start + i * step for i in range(length)]
