"""Cross-round memoization of pairwise match verdicts.

The pairwise computation function ``P`` re-verifies the same record
pairs every time a cluster is re-refined — across levels and rounds of
one adaptive run, across repeated :meth:`~repro.core.adaptive.
AdaptiveLSH.run`/:meth:`refine` calls, across streaming
insert-then-query rounds, and across the query lifetime of a
:class:`~repro.serve.ResolverSession`.  The paper's own optimization
(2) only skips candidates *transitively connected within one call*;
:class:`PairVerdictMemo` extends the saving across calls by remembering
every verdict ever computed.

Design mirrors :class:`~repro.lsh.keycache.LevelKeyCache`:

* one packed ``int64`` key per unordered pair (``min_rid`` in the high
  32 bits, ``max_rid`` in the low 32), stored in an open-addressed
  NumPy table next to a ``uint8`` verdict column;
* a byte budget — when the table would outgrow it, the memo *freezes*:
  existing verdicts keep serving, new pairs pass through unrecorded
  (counted as ``evictions``), and results stay correct either way;
* correctness rests on verdict determinism: a pair's verdict is a pure
  function of the store contents and the match rule, so the memo is
  fingerprinted by both (:meth:`PairVerdictMemo.bind`) and clears
  itself whenever either changes.  Store *extensions* (appending
  records) preserve every existing pair, so a prefix-fingerprint match
  keeps the table.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import ConfigurationError
from ..types import BoolArray, IntArray

if TYPE_CHECKING:
    from ..distance.rules import MatchRule
    from ..obs.observer import RunObserver
    from ..records import RecordStore

#: Environment variable consulted when ``AdaptiveConfig.pair_memo`` is
#: ``None``; the CLI's ``--no-pair-memo`` flag sets it so the knob
#: reaches every component without threading a parameter through each
#: call site (same pattern as ``REPRO_N_JOBS``).
PAIR_MEMO_ENV = "REPRO_PAIR_MEMO"

#: Default cap on the memo's table bytes (keys + verdicts).  At nine
#: bytes per slot and the 0.6 load ceiling this remembers ~4.5 million
#: pair verdicts.
DEFAULT_MAX_BYTES = 64 << 20

#: Initial table capacity (slots); always a power of two.
_INITIAL_CAPACITY = 1 << 12
#: Grow when ``pairs / capacity`` would exceed 3/5.
_LOAD_NUM, _LOAD_DEN = 3, 5
#: Slot sentinel for "empty" (valid keys are non-negative).
_EMPTY = np.int64(-1)
#: Fibonacci-hashing multiplier (splitmix64 finalizer constant).
_MIX = np.uint64(0x9E3779B97F4A7C15)

#: Verdict codes stored in the table / returned by :meth:`lookup`.
UNKNOWN = np.uint8(0)
NO_MATCH = np.uint8(1)
MATCH = np.uint8(2)


def resolve_pair_memo(flag: bool | None = None) -> bool:
    """Resolve the ``pair_memo`` knob to a concrete on/off decision.

    ``None`` falls back to the ``REPRO_PAIR_MEMO`` environment variable
    and to *enabled* when that is unset.
    """
    if flag is not None:
        return bool(flag)
    raw = os.environ.get(PAIR_MEMO_ENV, "").strip().lower()
    if not raw:
        return True
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    raise ConfigurationError(
        f"{PAIR_MEMO_ENV} must be a boolean flag (0/1), got {raw!r}"
    )


def pack_pair_keys(a: IntArray, b: IntArray) -> IntArray:
    """Canonical packed key per unordered pair: ``min << 32 | max``.

    Inputs broadcast like any NumPy binary op, so one record id against
    a candidate array packs without materializing a tiled copy.
    """
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    return (lo << np.int64(32)) | hi


def _probe_start(keys: IntArray, mask: int) -> IntArray:
    """Initial probe slot per key (multiplicative hash of the key)."""
    mixed = keys.view(np.uint64) * _MIX
    return (mixed >> np.uint64(32)).astype(np.int64) & np.int64(mask)


def rule_fingerprint(rule: MatchRule) -> str:
    """Stable digest of a match rule's semantics.

    Serializable rule trees digest their canonical spec
    (:func:`repro.io.rule_to_spec`); anything else falls back to
    ``repr``, which every in-repo rule implements deterministically.
    """
    from ..io import rule_to_spec

    try:
        payload = json.dumps(rule_to_spec(rule), sort_keys=True)
    except ConfigurationError:
        payload = repr(rule)
    return hashlib.sha256(payload.encode()).hexdigest()


class PairVerdictMemo:
    """Byte-budgeted table of remembered pairwise match verdicts.

    The memo is shared by every consumer working over one
    ``(store, rule)`` binding — both :class:`~repro.core.pairwise_fn.
    PairwiseComputation` strategies, the lookahead density sampler, and
    (through :class:`~repro.core.adaptive.AdaptiveLSH`) streaming
    refines and serving sessions.  :meth:`bind` establishes or
    re-validates the binding; lookups and records are vectorized over
    packed pair keys.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._keys: IntArray = np.full(_INITIAL_CAPACITY, _EMPTY, dtype=np.int64)
        self._verdicts = np.zeros(_INITIAL_CAPACITY, dtype=np.uint8)
        self._pairs = 0
        #: True once the byte budget blocked a growth step: existing
        #: verdicts keep serving, new pairs degrade to pass-through.
        self.frozen = False
        #: True when the bound store is too large for 32-bit packing;
        #: every lookup misses and nothing is recorded.
        self.disabled = False
        self._rule_fp: str | None = None
        self._store_fp: str | None = None
        self._n_records = 0
        #: Verdicts served / pairs evaluated fresh / records dropped by
        #: the frozen table (work counters, monotone over the binding).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Times :meth:`bind` discarded the table (fingerprint change).
        self.invalidations = 0
        #: Optional :class:`~repro.obs.observer.RunObserver`; when set
        #: and enabled, lookups feed ``pairmemo.*`` counters.
        self.observer: RunObserver | None = None

    # ------------------------------------------------------------------
    # binding / invalidation
    # ------------------------------------------------------------------
    def bind(self, store: RecordStore, rule: MatchRule) -> None:
        """Bind (or re-validate) the memo against a store and a rule.

        Remembered verdicts survive exactly when the rule fingerprint
        matches and the store still contains the previously bound
        records as a byte-identical prefix — i.e. re-binding after a
        store *extension* keeps the table, while a different store, a
        mutated prefix, or a different rule clears it.
        """
        if len(store) > (1 << 32) - 1:
            # Packed keys hold two 32-bit ids; beyond that the memo
            # degrades to a no-op rather than corrupting verdicts.
            self.disabled = True
            self._clear()
            return
        self.disabled = False
        rule_fp = rule_fingerprint(rule)
        compatible = (
            self._rule_fp == rule_fp
            and self._store_fp is not None
            and len(store) >= self._n_records
            and store.content_fingerprint(limit=self._n_records) == self._store_fp
        )
        if not compatible and self._rule_fp is not None:
            self.invalidations += 1
            self._clear()
        self._rule_fp = rule_fp
        self._n_records = len(store)
        self._store_fp = store.content_fingerprint()

    def _clear(self) -> None:
        self._keys = np.full(_INITIAL_CAPACITY, _EMPTY, dtype=np.int64)
        self._verdicts = np.zeros(_INITIAL_CAPACITY, dtype=np.uint8)
        self._pairs = 0
        self.frozen = False
        self._rule_fp = None
        self._store_fp = None
        self._n_records = 0

    # ------------------------------------------------------------------
    # lookup / record
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return int(self._keys.size)

    @property
    def pairs(self) -> int:
        """Distinct pair verdicts currently remembered."""
        return self._pairs

    @property
    def table_bytes(self) -> int:
        return int(self._keys.nbytes + self._verdicts.nbytes)

    def _find_slots(self, keys: IntArray) -> IntArray:
        """Per key: the slot holding it, or the empty slot where an
        insertion probe for it terminates (linear probing)."""
        mask = self.capacity - 1
        idx = _probe_start(keys, mask)
        out = np.empty(keys.size, dtype=np.int64)
        pending = np.arange(keys.size)
        table = self._keys
        while pending.size:
            cur = idx[pending]
            occupant = table[cur]
            done = (occupant == keys[pending]) | (occupant == _EMPTY)
            out[pending[done]] = cur[done]
            pending = pending[~done]
            idx[pending] = (idx[pending] + 1) & mask
        return out

    def lookup(self, keys: IntArray) -> np.ndarray[Any, np.dtype[np.uint8]]:
        """Remembered verdicts for packed pair ``keys``.

        Returns one code per key: :data:`MATCH`, :data:`NO_MATCH`, or
        :data:`UNKNOWN` for pairs never recorded.
        """
        if self.disabled or keys.size == 0:
            return np.zeros(keys.size, dtype=np.uint8)
        slots = self._find_slots(keys)
        verdicts: np.ndarray[Any, np.dtype[np.uint8]] = np.where(
            self._keys[slots] == keys, self._verdicts[slots], UNKNOWN
        )
        hits = int(np.count_nonzero(verdicts))
        self._record_counts(hits, int(keys.size) - hits, 0)
        return verdicts

    def record(self, keys: IntArray, matched: BoolArray) -> None:
        """Remember fresh verdicts: ``matched[i]`` for pair ``keys[i]``.

        Keys already present are overwritten (the verdict is identical
        by determinism); new keys are inserted while the byte budget
        allows and silently dropped — counted as evictions — once the
        memo is frozen.
        """
        if self.disabled or keys.size == 0:
            return
        verdicts = np.where(matched, MATCH, NO_MATCH).astype(np.uint8)
        if not self.frozen and not self._ensure_room(int(keys.size)):
            self.frozen = True
        if self.frozen:
            slots = self._find_slots(keys)
            present = self._keys[slots] == keys
            dropped = int(np.count_nonzero(~present))
            if dropped:
                self._record_counts(0, 0, dropped)
            self._verdicts[slots[present]] = verdicts[present]
            return
        self._insert(keys, verdicts)

    def _ensure_room(self, incoming: int) -> bool:
        """Grow until ``pairs + incoming`` fits under the load ceiling;
        False when the byte budget forbids the required capacity."""
        needed = self._pairs + incoming
        capacity = self.capacity
        while needed * _LOAD_DEN > capacity * _LOAD_NUM:
            capacity *= 2
        if capacity == self.capacity:
            return True
        if capacity * 9 > self.max_bytes:
            return False
        old_keys = self._keys
        old_verdicts = self._verdicts
        live = old_keys != _EMPTY
        self._keys = np.full(capacity, _EMPTY, dtype=np.int64)
        self._verdicts = np.zeros(capacity, dtype=np.uint8)
        self._pairs = 0
        self._insert(old_keys[live], old_verdicts[live])
        return True

    def _insert(
        self, keys: IntArray, verdicts: np.ndarray[Any, np.dtype[np.uint8]]
    ) -> None:
        """Batch insert via scatter-and-verify linear probing.

        Several distinct keys may race for the same empty slot within
        one batch; the scatter write lets the last one win, the
        re-read identifies winners, and losers re-probe from the next
        slot.  Each round settles at least one key, so the loop
        terminates.
        """
        mask = self.capacity - 1
        idx = _probe_start(keys, mask)
        pending = np.arange(keys.size)
        while pending.size:
            cur = idx[pending]
            occupant = self._keys[cur]
            empty = occupant == _EMPTY
            claim = pending[empty]
            self._keys[cur[empty]] = keys[claim]
            won = self._keys[cur] == keys[pending]
            self._verdicts[cur[won]] = verdicts[pending[won]]
            # Count distinct newly-filled slots: duplicate keys in one
            # batch all "win" the same slot but fill it only once.
            self._pairs += int(np.unique(cur[won & empty]).size)
            pending = pending[~won]
            idx[pending] = (idx[pending] + 1) & mask

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _record_counts(self, hits: int, misses: int, evictions: int) -> None:
        self.hits += hits
        self.misses += misses
        self.evictions += evictions
        obs = self.observer
        if obs is not None and obs.enabled:
            if hits:
                obs.counter("pairmemo.hits").inc(hits)
            if misses:
                obs.counter("pairmemo.misses").inc(misses)
            if evictions:
                obs.counter("pairmemo.evictions").inc(evictions)

    def stats(self) -> dict[str, Any]:
        """Memo summary for run reports (`info["memoized_pairs"]`)."""
        return {
            "pairs": int(self._pairs),
            "bytes": self.table_bytes,
            "hits": int(self.hits),
            "misses": int(self.misses),
            "evictions": int(self.evictions),
            "invalidations": int(self.invalidations),
            "frozen": bool(self.frozen),
            "disabled": bool(self.disabled),
        }
