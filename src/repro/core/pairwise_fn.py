"""The pairwise computation function ``P`` (paper Definition 2).

``P`` computes record-pair distances inside one input set and outputs
the connected components of the match graph.  Two execution strategies
share the same semantics:

* ``rowwise`` — processes records one by one against all previous
  records, skipping candidates already transitively connected (the
  paper's optimization (2) in §6.1.1).  Best for the small-to-medium
  clusters Adaptive LSH hands to ``P``.
* ``blocked`` — vectorized block-matrix evaluation without skipping.
  Best for large sets (the Pairs baseline on whole datasets), where
  NumPy batch evaluation beats Python-level skipping.  When an
  :class:`~repro.parallel.pool.ExecutionPool` is attached (and the
  input clears its size threshold), the row-blocks are fanned across
  worker processes and their edge lists replayed in serial order, so
  the parallel result is bit-identical to the serial one.

The cost model always charges the conservative ``C(|S|, 2)`` pairs
(``pairs_charged``); ``pairs_compared`` records the evaluations the
chosen strategy actually performed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..distance.rules import MatchRule
from ..errors import ConfigurationError
from ..obs.clock import monotonic
from ..parallel.pool import ExecutionPool, resolve_n_jobs
from ..records import RecordStore
from ..structures.parent_pointer_tree import ParentPointerForest
from ..types import ArrayLike, IntArray
from .result import WorkCounters

if TYPE_CHECKING:
    from ..obs.observer import RunObserver

#: "auto" uses the rowwise strategy up to this set size and blocked
#: above it.  Measured crossover (``benchmarks/
#: bench_pairwise_crossover.py``, spotsigs-style shingle inputs, both
#: near-duplicate clusters and sparse random samples): rowwise wins by
#: about 2x at 8 records and below, ties at ~12, and falls behind
#: steadily beyond — its per-row Python overhead grows quadratically
#: while the vectorized block evaluation stays near-flat, so the limit
#: is biased low (misclassifying a small set costs a bounded ~0.3 ms;
#: misclassifying a large one costs quadratically).
ROWWISE_LIMIT = 12
#: Row-block height for the blocked strategy.
BLOCK = 512


class PairwiseComputation:
    """Callable implementing function ``P`` over a record store."""

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule,
        strategy: str = "auto",
        n_jobs: int | None = None,
        pool: ExecutionPool | None = None,
    ) -> None:
        if strategy not in ("auto", "rowwise", "blocked"):
            raise ConfigurationError(
                f"strategy must be auto|rowwise|blocked, got {strategy!r}"
            )
        self.store = store
        self.rule = rule
        self.strategy = strategy
        #: Optional :class:`~repro.obs.observer.RunObserver`; when set
        #: and enabled, :meth:`apply` feeds pair counters and per-call
        #: timing histograms into its metrics registry.
        self.observer: RunObserver | None = None
        #: Optional :class:`~repro.parallel.pool.ExecutionPool` used by
        #: the blocked strategy.  Either passed in (shared, e.g. by
        #: ``AdaptiveLSH``) or created here when ``n_jobs`` resolves to
        #: more than one worker; a pool created here is owned and shut
        #: down by :meth:`close`.
        self.pool: ExecutionPool | None = pool
        self._owns_pool = False
        if pool is None and resolve_n_jobs(n_jobs) > 1:
            self.pool = ExecutionPool(store, n_jobs)
            self._owns_pool = True

    def close(self) -> None:
        """Shut down the execution pool if this instance created it."""
        if self._owns_pool and self.pool is not None:
            self.pool.close()
            self.pool = None

    def choose_strategy(self, m: int) -> str:
        """The concrete strategy ``apply`` uses for an input of size ``m``."""
        if self.strategy != "auto":
            return self.strategy
        return "rowwise" if m <= ROWWISE_LIMIT else "blocked"

    # ------------------------------------------------------------------
    def apply(
        self, rids: ArrayLike, counters: WorkCounters | None = None
    ) -> list[IntArray]:
        """Split ``rids`` into clusters of matching records."""
        rids = np.asarray(rids, dtype=np.int64)
        m = int(rids.size)
        if counters is not None:
            counters.pairs_charged += m * (m - 1) // 2
        if m <= 1:
            return [rids.copy()] if m else []
        strategy = self.choose_strategy(m)
        obs = self.observer
        timed = obs is not None and obs.enabled
        compared_before = 0
        started = 0.0
        if timed:
            compared_before = counters.pairs_compared if counters is not None else 0
            started = monotonic()
        if strategy == "rowwise":
            forest = self._apply_rowwise(rids, counters)
        else:
            forest = self._apply_blocked(rids, counters)
        if timed:
            assert obs is not None
            obs.histogram(f"pairwise.{strategy}_seconds").observe(
                monotonic() - started
            )
            obs.histogram("pairwise.cluster_size").observe(m)
            obs.counter("pairwise.pairs_charged").inc(m * (m - 1) // 2)
            if counters is not None:
                obs.counter("pairwise.pairs_compared").inc(
                    counters.pairs_compared - compared_before
                )
        return [
            np.fromiter(
                ParentPointerForest.leaves(root), dtype=np.int64, count=root.n_leaves
            )
            for root in forest.roots()
        ]

    # ------------------------------------------------------------------
    #: Candidate chunk width of the rowwise strategy; skipping is
    #: re-evaluated between chunks, so once a record joins a tree the
    #: rest of that tree's members cost nothing.
    _ROW_CHUNK = 16

    def _apply_rowwise(
        self, rids: IntArray, counters: WorkCounters | None
    ) -> ParentPointerForest:
        forest = ParentPointerForest()
        int_rids = [int(r) for r in rids]
        for rid in int_rids:
            forest.make_singleton(rid)
        compared = 0
        for j in range(1, len(int_rids)):
            rid_j = int_rids[j]
            for lo in range(0, j, self._ROW_CHUNK):
                hi = min(lo + self._ROW_CHUNK, j)
                root_j = forest.find_root(rid_j)
                # Optimization (2): candidates already transitively
                # connected to rid_j contribute no new edges.
                pending = [
                    i
                    for i in range(lo, hi)
                    if forest.find_root(int_rids[i]) is not root_j
                ]
                if not pending:
                    continue
                matches = self.rule.match_one_to_many(
                    self.store, rid_j, rids[pending]
                )
                compared += len(pending)
                for idx, hit in zip(pending, matches):
                    if hit:
                        forest.union_records(rid_j, int_rids[idx])
        if counters is not None:
            counters.pairs_compared += compared
        return forest

    def _apply_blocked(
        self, rids: IntArray, counters: WorkCounters | None
    ) -> ParentPointerForest:
        if self.pool is not None:
            bundles = self.pool.pairwise_block_edges(self.rule, rids, BLOCK)
            if bundles is not None:
                return self._replay_blocked(rids, bundles, counters)
        forest = ParentPointerForest()
        int_rids = [int(r) for r in rids]
        for rid in int_rids:
            forest.make_singleton(rid)
        m = len(int_rids)
        compared = 0
        for start in range(0, m, BLOCK):
            stop = min(start + BLOCK, m)
            block = rids[start:stop]
            # Within-block upper triangle.
            square = self.rule.pairwise_match(self.store, block)
            compared += (stop - start) * (stop - start - 1) // 2
            for a, b in zip(*np.nonzero(np.triu(square, k=1))):
                forest.union_records(int_rids[start + a], int_rids[start + b])
            # Cross block: rows in this block vs all earlier records.
            if start:
                earlier = rids[:start]
                cross = self.rule.match_block(self.store, block, earlier)
                compared += (stop - start) * start
                for a, b in zip(*np.nonzero(cross)):
                    forest.union_records(int_rids[start + a], int_rids[int(b)])
        if counters is not None:
            counters.pairs_compared += compared
        return forest

    def _replay_blocked(
        self,
        rids: IntArray,
        bundles: list[tuple[int, IntArray, IntArray, IntArray, IntArray]],
        counters: WorkCounters | None,
    ) -> ParentPointerForest:
        """Union worker-computed block edges in serial order.

        ``bundles`` arrives in ascending block order with each edge
        list in ``np.nonzero`` enumeration order — the exact union
        sequence of :meth:`_apply_blocked` — so the resulting forest
        (and hence cluster content and leaf order) is bit-identical to
        the serial blocked strategy.
        """
        forest = ParentPointerForest()
        int_rids = [int(r) for r in rids]
        for rid in int_rids:
            forest.make_singleton(rid)
        m = len(int_rids)
        compared = 0
        for start, intra_i, intra_j, cross_i, cross_j in bundles:
            stop = min(start + BLOCK, m)
            compared += (stop - start) * (stop - start - 1) // 2
            for a, b in zip(intra_i.tolist(), intra_j.tolist()):
                forest.union_records(int_rids[start + a], int_rids[start + b])
            if start:
                compared += (stop - start) * start
                for a, b in zip(cross_i.tolist(), cross_j.tolist()):
                    forest.union_records(int_rids[start + a], int_rids[b])
        if counters is not None:
            counters.pairs_compared += compared
        return forest
