"""The pairwise computation function ``P`` (paper Definition 2).

``P`` computes record-pair distances inside one input set and outputs
the connected components of the match graph.  Two execution strategies
share the same semantics:

* ``rowwise`` — processes records one by one against all previous
  records, skipping candidates already transitively connected (the
  paper's optimization (2) in §6.1.1).  Best for the small-to-medium
  clusters Adaptive LSH hands to ``P``.
* ``blocked`` — vectorized block-matrix evaluation without skipping.
  Best for large sets (the Pairs baseline on whole datasets), where
  NumPy batch evaluation beats Python-level skipping.  When an
  :class:`~repro.parallel.pool.ExecutionPool` is attached (and the
  input clears its size threshold), the row-blocks are fanned across
  worker processes and their edge lists replayed in serial order, so
  the parallel result is bit-identical to the serial one.

Both strategies consult an optional
:class:`~repro.core.pairmemo.PairVerdictMemo`: the rowwise path skips
candidates whose verdict is already remembered, and the blocked path
masks memoized cells out of the matrix evaluations, merging the
remembered match edges back in exact ``np.nonzero`` enumeration order
— so cluster content and leaf order stay bit-identical to the
memo-off computation for every strategy and every ``n_jobs``.

The cost model always charges the conservative ``C(|S|, 2)`` pairs
(``pairs_charged``); ``pairs_compared`` records the evaluations the
chosen strategy actually performed — with a warm memo, re-verified
pairs cost (and count) nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple

import numpy as np

from ..distance.rules import MatchRule
from ..errors import ConfigurationError
from ..kernels import resolve_kernels, use_kernels
from ..obs.clock import monotonic
from ..parallel import worker as parallel_worker
from ..parallel.pool import ExecutionPool, resolve_n_jobs
from ..records import RecordStore
from ..structures.parent_pointer_tree import ParentPointerForest
from ..structures.union_find import ClusterUnionFind
from ..types import ArrayLike, IntArray
from .pairmemo import MATCH, NO_MATCH, UNKNOWN, PairVerdictMemo, pack_pair_keys
from .result import WorkCounters

if TYPE_CHECKING:
    from ..obs.observer import RunObserver

#: "auto" uses the rowwise strategy up to this set size and blocked
#: above it.  Measured crossover (``benchmarks/
#: bench_pairwise_crossover.py``, spotsigs-style shingle inputs, both
#: near-duplicate clusters and sparse random samples): rowwise wins by
#: about 2x at 8 records and below, ties at ~12, and falls behind
#: steadily beyond — its per-row Python overhead grows quadratically
#: while the vectorized block evaluation stays near-flat, so the limit
#: is biased low (misclassifying a small set costs a bounded ~0.3 ms;
#: misclassifying a large one costs quadratically).
ROWWISE_LIMIT = 12
#: Row-block height for the blocked strategy.
BLOCK = 512
#: Cross-block memo lookups/records run over column chunks of at most
#: this many cells, bounding the transient packed-key arrays to ~16 MiB
#: regardless of how many earlier rows a block faces.
_CROSS_CELL_CHUNK = 1 << 21

_EMPTY_I64 = np.zeros(0, dtype=np.int64)


def _vertex_cover(edge_i: IntArray, edge_j: IntArray, n: int) -> IntArray:
    """Greedy max-degree vertex cover of an edge list over ``n`` nodes.

    Every edge ends up with at least one endpoint in the returned
    (sorted) node set.  Used to decompose a block's unverified intra
    pairs into one all-pairs job over the cover plus one cover-vs-rest
    rectangle — a far smaller evaluation than re-running every row that
    merely *touches* an unverified pair.  Ties break on the lowest node
    index, so the cover is deterministic.
    """
    adj = np.zeros((n, n), dtype=bool)
    adj[edge_i, edge_j] = True
    adj[edge_j, edge_i] = True
    degree = adj.sum(axis=1).astype(np.int64)
    cover: list[int] = []
    while True:
        v = int(degree.argmax())
        if degree[v] == 0:
            break
        cover.append(v)
        degree -= adj[v]
        degree[v] = 0
        adj[v, :] = False
        adj[:, v] = False
    return np.asarray(sorted(cover), dtype=np.int64)


class _BlockPlan(NamedTuple):
    """Memo-mask metadata for one row-block of the blocked strategy.

    The unverified intra pairs are covered by one all-pairs job over
    ``pair_rows`` (a vertex cover of the unverified-pair graph — every
    block row when the whole triangle is unverified) plus one
    ``pair_rows`` × ``intra_rect_cols`` rectangle; the unverified
    block-vs-earlier cells are covered by the (row-disjoint) rectangles
    in ``cross_rects``.  Index arrays are sorted ascending, so mapping
    job-local edges through them preserves ``np.nonzero`` row-major
    order (rectangle edges are re-oriented and re-sorted at merge time
    anyway).
    """

    start: int
    stop: int
    #: Block-local rows evaluated all-pairs.
    pair_rows: IntArray
    #: Block-local rows evaluated against every ``pair_rows`` row.
    intra_rect_cols: IntArray
    #: Remembered intra match edges outside the re-evaluated region
    #: (block-local ``i < j``, row-major order).
    known_intra_i: IntArray
    known_intra_j: IntArray
    #: Row-disjoint rectangles covering the unverified block-vs-earlier
    #: cells: (block-local rows, earlier-local cols) each.
    cross_rects: list[tuple[IntArray, IntArray]]
    #: Remembered cross match edges outside those rectangles.
    known_cross_i: IntArray
    known_cross_j: IntArray

    @property
    def pairs_to_evaluate(self) -> int:
        p = int(self.pair_rows.size)
        total = p * (p - 1) // 2 + p * int(self.intra_rect_cols.size)
        for rows, cols in self.cross_rects:
            total += int(rows.size) * int(cols.size)
        return total


class PairwiseComputation:
    """Callable implementing function ``P`` over a record store."""

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule,
        strategy: str = "auto",
        n_jobs: int | None = None,
        pool: ExecutionPool | None = None,
        memo: PairVerdictMemo | None = None,
        kernels: str | None = None,
    ) -> None:
        if strategy not in ("auto", "rowwise", "blocked"):
            raise ConfigurationError(
                f"strategy must be auto|rowwise|blocked, got {strategy!r}"
            )
        self.store = store
        self.rule = rule
        self.strategy = strategy
        #: Resolved kernel backend name, pinned at construction and
        #: installed as the ambient selection for every :meth:`apply`
        #: (in-process and worker evaluation alike).  Backends are
        #: bit-identical, so this only affects speed.
        self.kernels = resolve_kernels(kernels)
        #: Optional :class:`~repro.obs.observer.RunObserver`; when set
        #: and enabled, :meth:`apply` feeds pair counters and per-call
        #: timing histograms into its metrics registry.
        self.observer: RunObserver | None = None
        #: Optional :class:`~repro.core.pairmemo.PairVerdictMemo`.  The
        #: owner is responsible for keeping it bound to ``(store,
        #: rule)``; :class:`~repro.core.adaptive.AdaptiveLSH` re-binds
        #: on every prepare/adopt.
        self.memo: PairVerdictMemo | None = memo
        #: Optional :class:`~repro.parallel.pool.ExecutionPool` used by
        #: the blocked strategy.  Either passed in (shared, e.g. by
        #: ``AdaptiveLSH``) or created here when ``n_jobs`` resolves to
        #: more than one worker; a pool created here is owned and shut
        #: down by :meth:`close`.
        self.pool: ExecutionPool | None = pool
        self._owns_pool = False
        if pool is None and resolve_n_jobs(n_jobs) > 1:
            self.pool = ExecutionPool(store, n_jobs)
            self._owns_pool = True

    def close(self) -> None:
        """Shut down the execution pool if this instance created it."""
        if self._owns_pool and self.pool is not None:
            self.pool.close()
            self.pool = None

    def choose_strategy(self, m: int) -> str:
        """The concrete strategy ``apply`` uses for an input of size ``m``."""
        if self.strategy != "auto":
            return self.strategy
        return "rowwise" if m <= ROWWISE_LIMIT else "blocked"

    def _active_memo(self) -> PairVerdictMemo | None:
        memo = self.memo
        if memo is None or memo.disabled:
            return None
        return memo

    # ------------------------------------------------------------------
    def apply(
        self, rids: ArrayLike, counters: WorkCounters | None = None
    ) -> list[IntArray]:
        """Split ``rids`` into clusters of matching records."""
        rids = np.asarray(rids, dtype=np.int64)
        m = int(rids.size)
        if counters is not None:
            counters.pairs_charged += m * (m - 1) // 2
        if m <= 1:
            return [rids.copy()] if m else []
        strategy = self.choose_strategy(m)
        obs = self.observer
        timed = obs is not None and obs.enabled
        compared_before = 0
        started = 0.0
        if timed:
            compared_before = counters.pairs_compared if counters is not None else 0
            started = monotonic()
        with use_kernels(self.kernels):
            if strategy == "rowwise":
                clusters = self._apply_rowwise(rids, counters)
            else:
                clusters = self._apply_blocked(rids, counters)
        if timed:
            assert obs is not None
            obs.histogram(f"pairwise.{strategy}_seconds").observe(
                monotonic() - started
            )
            obs.histogram("pairwise.cluster_size").observe(m)
            obs.counter("pairwise.pairs_charged").inc(m * (m - 1) // 2)
            if counters is not None:
                obs.counter("pairwise.pairs_compared").inc(
                    counters.pairs_compared - compared_before
                )
        return clusters

    # ------------------------------------------------------------------
    #: Candidate chunk width of the rowwise strategy; skipping is
    #: re-evaluated between chunks, so once a record joins a tree the
    #: rest of that tree's members cost nothing.
    _ROW_CHUNK = 16

    def _apply_rowwise(
        self, rids: IntArray, counters: WorkCounters | None
    ) -> list[IntArray]:
        memo = self._active_memo()
        forest = ParentPointerForest()
        int_rids: list[int] = rids.tolist()
        for rid in int_rids:
            forest.make_singleton(rid)
        compared = 0
        for j in range(1, len(int_rids)):
            rid_j = int_rids[j]
            rid_j_arr = np.asarray(rid_j, dtype=np.int64)
            for lo in range(0, j, self._ROW_CHUNK):
                hi = min(lo + self._ROW_CHUNK, j)
                root_j = forest.find_root(rid_j)
                # Optimization (2): candidates already transitively
                # connected to rid_j contribute no new edges.
                pending = [
                    i
                    for i in range(lo, hi)
                    if forest.find_root(int_rids[i]) is not root_j
                ]
                if not pending:
                    continue
                candidates = rids[pending]
                if memo is not None:
                    keys = pack_pair_keys(rid_j_arr, candidates)
                    verdicts = memo.lookup(keys)
                    unknown = np.nonzero(verdicts == UNKNOWN)[0]
                    if unknown.size:
                        fresh = np.asarray(
                            self.rule.match_one_to_many(
                                self.store, rid_j, candidates[unknown]
                            ),
                            dtype=bool,
                        )
                        compared += int(unknown.size)
                        memo.record(keys[unknown], fresh)
                        verdicts[unknown] = np.where(fresh, MATCH, NO_MATCH)
                    matches = verdicts == MATCH
                else:
                    matches = self.rule.match_one_to_many(
                        self.store, rid_j, candidates
                    )
                    compared += len(pending)
                for idx, hit in zip(pending, matches):
                    if hit:
                        forest.union_records(rid_j, int_rids[idx])
        if counters is not None:
            counters.pairs_compared += compared
        return [
            np.fromiter(
                ParentPointerForest.leaves(root), dtype=np.int64, count=root.n_leaves
            )
            for root in forest.roots()
        ]

    # ------------------------------------------------------------------
    # blocked strategy
    # ------------------------------------------------------------------
    def _apply_blocked(
        self, rids: IntArray, counters: WorkCounters | None
    ) -> list[IntArray]:
        memo = self._active_memo()
        if memo is not None:
            return self._apply_blocked_memo(rids, memo, counters)
        if self.pool is not None:
            bundles = self.pool.pairwise_block_edges(
                self.rule, rids, BLOCK, kernels=self.kernels
            )
            if bundles is not None:
                return self._replay_blocked(rids, bundles, counters)
        m = int(rids.size)
        merger = ClusterUnionFind(m)
        compared = 0
        for start in range(0, m, BLOCK):
            stop = min(start + BLOCK, m)
            block = rids[start:stop]
            # Within-block upper triangle.
            square = self.rule.pairwise_match(self.store, block)
            compared += (stop - start) * (stop - start - 1) // 2
            intra_i, intra_j = np.nonzero(np.triu(square, k=1))
            merger.union_edges(intra_i + start, intra_j + start)
            # Cross block: rows in this block vs all earlier records.
            if start:
                earlier = rids[:start]
                cross = self.rule.match_block(self.store, block, earlier)
                compared += (stop - start) * start
                cross_i, cross_j = np.nonzero(cross)
                merger.union_edges(cross_i + start, np.asarray(cross_j))
        if counters is not None:
            counters.pairs_compared += compared
        return [rids[members] for members in merger.clusters()]

    def _replay_blocked(
        self,
        rids: IntArray,
        bundles: list[tuple[int, IntArray, IntArray, IntArray, IntArray]],
        counters: WorkCounters | None,
    ) -> list[IntArray]:
        """Union worker-computed block edges in serial order.

        ``bundles`` arrives in ascending block order with each edge
        list in ``np.nonzero`` enumeration order — the exact union
        sequence of :meth:`_apply_blocked` — so the resulting clusters
        (content and leaf order) are bit-identical to the serial
        blocked strategy.
        """
        m = int(rids.size)
        merger = ClusterUnionFind(m)
        compared = 0
        for start, intra_i, intra_j, cross_i, cross_j in bundles:
            stop = min(start + BLOCK, m)
            compared += (stop - start) * (stop - start - 1) // 2
            merger.union_edges(intra_i + start, intra_j + start)
            if start:
                compared += (stop - start) * start
                merger.union_edges(cross_i + start, cross_j)
        if counters is not None:
            counters.pairs_compared += compared
        return [rids[members] for members in merger.clusters()]

    # ------------------------------------------------------------------
    # blocked strategy, memoized
    # ------------------------------------------------------------------
    def _apply_blocked_memo(
        self, rids: IntArray, memo: PairVerdictMemo, counters: WorkCounters | None
    ) -> list[IntArray]:
        """Blocked evaluation that masks remembered cells out of the
        matrix calls and merges remembered edges back in serial order.

        Three phases: *plan* every block against the memo (each pair of
        one ``apply`` input occurs in exactly one block cell, so plans
        are independent of this call's own recordings), *evaluate* the
        unverified jobs (in-process or fanned across the pool — both
        run :func:`~repro.parallel.worker.evaluate_block_jobs`), then
        *merge* remembered and fresh match edges per block by cell
        index, which reproduces the full-matrix ``np.nonzero``
        enumeration order exactly.
        """
        m = int(rids.size)
        plans = [
            self._plan_block(memo, rids, start, min(start + BLOCK, m))
            for start in range(0, m, BLOCK)
        ]
        jobs = [self._plan_jobs(plan, rids) for plan in plans]
        results: (
            list[tuple[IntArray, IntArray, list[tuple[IntArray, IntArray]]]]
            | None
        ) = None
        if self.pool is not None:
            results = self.pool.pairwise_job_edges(
                self.rule, jobs, m, BLOCK, kernels=self.kernels
            )
        if results is None:
            results = [
                parallel_worker.evaluate_block_jobs(
                    self.store, self.rule, pair_rids, rects
                )
                for pair_rids, rects in jobs
            ]
        merger = ClusterUnionFind(m)
        compared = 0
        for plan, (pair_i, pair_j, rect_edges) in zip(plans, results):
            compared += plan.pairs_to_evaluate
            self._finish_block(
                memo, rids, plan, pair_i, pair_j, rect_edges, merger
            )
        if counters is not None:
            counters.pairs_compared += compared
        return [rids[members] for members in merger.clusters()]

    @staticmethod
    def _plan_jobs(
        plan: _BlockPlan, rids: IntArray
    ) -> tuple[IntArray, list[tuple[IntArray, IntArray]]]:
        """Materialize one block plan's evaluation jobs as rid arrays.

        Rectangle order: the intra cover-vs-rest rectangle (if any)
        first, then the cross rectangles in plan order —
        :meth:`_finish_block` splits the results the same way.
        """
        block = rids[plan.start : plan.stop]
        rects: list[tuple[IntArray, IntArray]] = []
        if plan.intra_rect_cols.size:
            rects.append((block[plan.pair_rows], block[plan.intra_rect_cols]))
        earlier = rids[: plan.start]
        for rows, cols in plan.cross_rects:
            rects.append((block[rows], earlier[cols]))
        return block[plan.pair_rows], rects

    def _plan_block(
        self, memo: PairVerdictMemo, rids: IntArray, start: int, stop: int
    ) -> _BlockPlan:
        """Consult the memo for every cell of one row-block."""
        block = rids[start:stop]
        bs = stop - start
        # Intra-block upper triangle; triu_indices enumerates row-major,
        # matching np.nonzero(np.triu(...)).
        tri_i, tri_j = np.triu_indices(bs, k=1)
        verdicts = memo.lookup(pack_pair_keys(block[tri_i], block[tri_j]))
        unknown = verdicts == UNKNOWN
        known = verdicts == MATCH
        known_i = tri_i[known].astype(np.int64, copy=False)
        known_j = tri_j[known].astype(np.int64, copy=False)
        pair_rows = intra_rect_cols = _EMPTY_I64
        if unknown.all():
            # Cold block: one all-pairs job over every row — the exact
            # evaluation the memo-off path performs.
            pair_rows = np.arange(bs, dtype=np.int64)
        elif unknown.any():
            u_i = tri_i[unknown].astype(np.int64, copy=False)
            u_j = tri_j[unknown].astype(np.int64, copy=False)
            pair_rows = _vertex_cover(u_i, u_j, bs)
            in_cover = np.zeros(bs, dtype=bool)
            in_cover[pair_rows] = True
            # Unverified pairs with exactly one endpoint in the cover
            # are reached through the cover-vs-rest rectangle; collect
            # the outside endpoints.
            outside = np.where(in_cover[u_i], u_j, u_i)
            intra_rect_cols = np.unique(outside[~(in_cover[u_i] & in_cover[u_j])])
            # Pairs inside the re-evaluated region come back as fresh
            # edges; drop their remembered copies to keep the merged
            # stream duplicate-free.
            in_rect = np.zeros(bs, dtype=bool)
            in_rect[intra_rect_cols] = True
            covered = (in_cover[known_i] & (in_cover | in_rect)[known_j]) | (
                in_rect[known_i] & in_cover[known_j]
            )
            known_i, known_j = known_i[~covered], known_j[~covered]
        cross_rects: list[tuple[IntArray, IntArray]] = []
        known_ci = known_cj = _EMPTY_I64
        if start:
            earlier = rids[:start]
            cross_verdicts = np.empty((bs, start), dtype=np.uint8)
            chunk = max(1, _CROSS_CELL_CHUNK // bs)
            for col in range(0, start, chunk):
                hi = min(col + chunk, start)
                keys = pack_pair_keys(
                    block[:, None], earlier[None, col:hi]
                ).reshape(-1)
                cross_verdicts[:, col:hi] = memo.lookup(keys).reshape(bs, hi - col)
            cross_unknown = cross_verdicts == UNKNOWN
            cross_known = cross_verdicts == MATCH
            if cross_unknown.all():
                cross_rects.append(
                    (
                        np.arange(bs, dtype=np.int64),
                        np.arange(start, dtype=np.int64),
                    )
                )
            else:
                row_cnt = cross_unknown.sum(axis=1)
                # Split rows into mostly-unverified (evaluated against
                # their union of unverified columns, which for fresh
                # records is every column) and sparsely-unverified
                # (evaluated only against the few columns they miss).
                # Row-disjoint rectangles never overlap, so no cell is
                # evaluated or recorded twice.
                dense = row_cnt * 2 >= start
                for mask in (dense & (row_cnt > 0), ~dense & (row_cnt > 0)):
                    rows = np.nonzero(mask)[0].astype(np.int64, copy=False)
                    if rows.size:
                        cols = np.nonzero(cross_unknown[rows].any(axis=0))[
                            0
                        ].astype(np.int64, copy=False)
                        cross_rects.append((rows, cols))
                        cross_known[np.ix_(rows, cols)] = False
            raw_ci, raw_cj = np.nonzero(cross_known)
            known_ci = raw_ci.astype(np.int64, copy=False)
            known_cj = raw_cj.astype(np.int64, copy=False)
        return _BlockPlan(
            start,
            stop,
            pair_rows,
            intra_rect_cols,
            known_i,
            known_j,
            cross_rects,
            known_ci,
            known_cj,
        )

    @staticmethod
    def _record_rect(
        memo: PairVerdictMemo,
        row_rids: IntArray,
        col_rids: IntArray,
        edge_a: IntArray,
        edge_b: IntArray,
    ) -> None:
        """Record every cell of one evaluated rectangle into the memo.

        Runs over column chunks so the packed-key temporaries stay
        bounded regardless of rectangle width.
        """
        nr, nc = int(row_rids.size), int(col_rids.size)
        matched = np.zeros((nr, nc), dtype=bool)
        matched[edge_a, edge_b] = True
        chunk = max(1, _CROSS_CELL_CHUNK // nr)
        for col in range(0, nc, chunk):
            hi = min(col + chunk, nc)
            memo.record(
                pack_pair_keys(row_rids[:, None], col_rids[None, col:hi]).reshape(
                    -1
                ),
                matched[:, col:hi].reshape(-1),
            )

    def _finish_block(
        self,
        memo: PairVerdictMemo,
        rids: IntArray,
        plan: _BlockPlan,
        pair_i: IntArray,
        pair_j: IntArray,
        rect_edges: list[tuple[IntArray, IntArray]],
        merger: ClusterUnionFind,
    ) -> None:
        """Record fresh verdicts and union this block's match edges.

        Remembered and fresh edges are disjoint by plan construction
        (the cover job, the cover-vs-rest rectangle, and the cross
        rectangles evaluate pairwise-disjoint cell sets); sorting their
        union by row-major cell index reproduces the order a
        full-matrix ``np.nonzero`` would have enumerated.
        """
        block = rids[plan.start : plan.stop]
        bs = plan.stop - plan.start
        rects = iter(rect_edges)
        rows = plan.pair_rows
        fresh_parts_i = [plan.known_intra_i]
        fresh_parts_j = [plan.known_intra_j]
        if rows.size >= 2:
            s = int(rows.size)
            sub_tri_i, sub_tri_j = np.triu_indices(s, k=1)
            matched = np.zeros((s, s), dtype=bool)
            matched[pair_i, pair_j] = True
            sub_rids = block[rows]
            memo.record(
                pack_pair_keys(sub_rids[sub_tri_i], sub_rids[sub_tri_j]),
                matched[sub_tri_i, sub_tri_j],
            )
            fresh_parts_i.append(rows[pair_i])
            fresh_parts_j.append(rows[pair_j])
        if plan.intra_rect_cols.size:
            edge_a, edge_b = next(rects)
            self._record_rect(
                memo,
                block[rows],
                block[plan.intra_rect_cols],
                edge_a,
                edge_b,
            )
            # Rectangle cells are unordered block pairs; re-orient so
            # every edge is upper-triangle before the row-major sort.
            raw_i = rows[edge_a]
            raw_j = plan.intra_rect_cols[edge_b]
            fresh_parts_i.append(np.minimum(raw_i, raw_j))
            fresh_parts_j.append(np.maximum(raw_i, raw_j))
        intra_i = np.concatenate(fresh_parts_i)
        intra_j = np.concatenate(fresh_parts_j)
        order = np.argsort(intra_i * bs + intra_j, kind="stable")
        merger.union_edges(intra_i[order] + plan.start, intra_j[order] + plan.start)
        if not plan.start:
            return
        earlier = rids[: plan.start]
        cross_parts_i = [plan.known_cross_i]
        cross_parts_j = [plan.known_cross_j]
        for (rect_rows, rect_cols), (edge_a, edge_b) in zip(plan.cross_rects, rects):
            self._record_rect(
                memo, block[rect_rows], earlier[rect_cols], edge_a, edge_b
            )
            cross_parts_i.append(rect_rows[edge_a])
            cross_parts_j.append(rect_cols[edge_b])
        cross_i = np.concatenate(cross_parts_i)
        cross_j = np.concatenate(cross_parts_j)
        order = np.argsort(cross_i * plan.start + cross_j, kind="stable")
        merger.union_edges(cross_i[order] + plan.start, cross_j[order])
