"""The pairwise computation function ``P`` (paper Definition 2).

``P`` computes record-pair distances inside one input set and outputs
the connected components of the match graph.  Two execution strategies
share the same semantics:

* ``rowwise`` — processes records one by one against all previous
  records, skipping candidates already transitively connected (the
  paper's optimization (2) in §6.1.1).  Best for the small-to-medium
  clusters Adaptive LSH hands to ``P``.
* ``blocked`` — vectorized block-matrix evaluation without skipping.
  Best for very large sets (the Pairs baseline on whole datasets),
  where NumPy batch evaluation beats Python-level skipping.

The cost model always charges the conservative ``C(|S|, 2)`` pairs
(``pairs_charged``); ``pairs_compared`` records the evaluations the
chosen strategy actually performed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..distance.rules import MatchRule
from ..errors import ConfigurationError
from ..obs.clock import monotonic
from ..records import RecordStore
from ..structures.parent_pointer_tree import ParentPointerForest
from ..types import ArrayLike, IntArray
from .result import WorkCounters

if TYPE_CHECKING:
    from ..obs.observer import RunObserver

#: "auto" uses the rowwise strategy only below this set size; vectorized
#: block evaluation beats Python-level pair skipping for anything
#: larger (scipy/numpy per-call overhead dwarfs the skipped work).
ROWWISE_LIMIT = 3
#: Row-block height for the blocked strategy.
BLOCK = 512


class PairwiseComputation:
    """Callable implementing function ``P`` over a record store."""

    def __init__(
        self, store: RecordStore, rule: MatchRule, strategy: str = "auto"
    ) -> None:
        if strategy not in ("auto", "rowwise", "blocked"):
            raise ConfigurationError(
                f"strategy must be auto|rowwise|blocked, got {strategy!r}"
            )
        self.store = store
        self.rule = rule
        self.strategy = strategy
        #: Optional :class:`~repro.obs.observer.RunObserver`; when set
        #: and enabled, :meth:`apply` feeds pair counters and per-call
        #: timing histograms into its metrics registry.
        self.observer: RunObserver | None = None

    # ------------------------------------------------------------------
    def apply(
        self, rids: ArrayLike, counters: WorkCounters | None = None
    ) -> list[IntArray]:
        """Split ``rids`` into clusters of matching records."""
        rids = np.asarray(rids, dtype=np.int64)
        m = int(rids.size)
        if counters is not None:
            counters.pairs_charged += m * (m - 1) // 2
        if m <= 1:
            return [rids.copy()] if m else []
        strategy = self.strategy
        if strategy == "auto":
            strategy = "rowwise" if m <= ROWWISE_LIMIT else "blocked"
        obs = self.observer
        timed = obs is not None and obs.enabled
        compared_before = 0
        started = 0.0
        if timed:
            compared_before = counters.pairs_compared if counters is not None else 0
            started = monotonic()
        if strategy == "rowwise":
            forest = self._apply_rowwise(rids, counters)
        else:
            forest = self._apply_blocked(rids, counters)
        if timed:
            assert obs is not None
            obs.histogram(f"pairwise.{strategy}_seconds").observe(
                monotonic() - started
            )
            obs.histogram("pairwise.cluster_size").observe(m)
            obs.counter("pairwise.pairs_charged").inc(m * (m - 1) // 2)
            if counters is not None:
                obs.counter("pairwise.pairs_compared").inc(
                    counters.pairs_compared - compared_before
                )
        return [
            np.fromiter(
                ParentPointerForest.leaves(root), dtype=np.int64, count=root.n_leaves
            )
            for root in forest.roots()
        ]

    # ------------------------------------------------------------------
    #: Candidate chunk width of the rowwise strategy; skipping is
    #: re-evaluated between chunks, so once a record joins a tree the
    #: rest of that tree's members cost nothing.
    _ROW_CHUNK = 16

    def _apply_rowwise(
        self, rids: IntArray, counters: WorkCounters | None
    ) -> ParentPointerForest:
        forest = ParentPointerForest()
        int_rids = [int(r) for r in rids]
        for rid in int_rids:
            forest.make_singleton(rid)
        compared = 0
        for j in range(1, len(int_rids)):
            rid_j = int_rids[j]
            for lo in range(0, j, self._ROW_CHUNK):
                hi = min(lo + self._ROW_CHUNK, j)
                root_j = forest.find_root(rid_j)
                # Optimization (2): candidates already transitively
                # connected to rid_j contribute no new edges.
                pending = [
                    i
                    for i in range(lo, hi)
                    if forest.find_root(int_rids[i]) is not root_j
                ]
                if not pending:
                    continue
                matches = self.rule.match_one_to_many(
                    self.store, rid_j, rids[pending]
                )
                compared += len(pending)
                for idx, hit in zip(pending, matches):
                    if hit:
                        forest.union_records(rid_j, int_rids[idx])
        if counters is not None:
            counters.pairs_compared += compared
        return forest

    def _apply_blocked(
        self, rids: IntArray, counters: WorkCounters | None
    ) -> ParentPointerForest:
        forest = ParentPointerForest()
        int_rids = [int(r) for r in rids]
        for rid in int_rids:
            forest.make_singleton(rid)
        m = len(int_rids)
        compared = 0
        for start in range(0, m, BLOCK):
            stop = min(start + BLOCK, m)
            block = rids[start:stop]
            # Within-block upper triangle.
            square = self.rule.pairwise_match(self.store, block)
            compared += (stop - start) * (stop - start - 1) // 2
            for a, b in zip(*np.nonzero(np.triu(square, k=1))):
                forest.union_records(int_rids[start + a], int_rids[start + b])
            # Cross block: rows in this block vs all earlier records.
            if start:
                earlier = rids[:start]
                cross = self.rule.match_block(self.store, block, earlier)
                compared += (stop - start) * start
                for a, b in zip(*np.nonzero(cross)):
                    forest.union_records(int_rids[start + a], int_rids[int(b)])
        if counters is not None:
            counters.pairs_compared += compared
        return forest
