"""Frozen configuration object for :class:`~repro.core.adaptive.AdaptiveLSH`.

The adaptive method grew a sprawling constructor (budgets, epsilon,
seed, cost model, noise, selection, jump policy, parallelism, caching);
:class:`AdaptiveConfig` consolidates all of it into one immutable,
comparable value that every entry point — ``AdaptiveLSH``,
``adaptive_filter``, ``TopKPipeline``, ``StreamingTopK``, the CLI, and
index snapshots — constructs through.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any

from ..errors import ConfigurationError
from ..kernels import KERNEL_NAMES
from ..lsh.binindex import DEFAULT_MAX_BYTES as DEFAULT_BIN_INDEX_BYTES
from ..lsh.design import DEFAULT_EPSILON
from ..rngutil import SeedLike
from .cost import CostModel
from .pairmemo import DEFAULT_MAX_BYTES as DEFAULT_PAIR_MEMO_BYTES

#: Cluster-selection strategies accepted by the adaptive loop.
SELECTIONS = ("largest", "largest-unoptimized", "smallest", "random")

#: Jump policies for the Line-5 hashing-vs-pairwise decision.
JUMP_POLICIES = ("line5", "lookahead")


@dataclass(frozen=True)
class AdaptiveConfig:
    """Every tuning knob of the adaptive method, in one frozen value.

    Parameters mirror the historical ``AdaptiveLSH`` keyword arguments;
    see that class's docstring for semantics.  Instances are immutable —
    derive variants with :func:`dataclasses.replace`.
    """

    budgets: tuple[int, ...] | None = None
    epsilon: float = DEFAULT_EPSILON
    seed: SeedLike = None
    cost_model: CostModel | str = "calibrate"
    noise_factor: float = 1.0
    analytic_pair_cost: float = 20.0
    pairwise_strategy: str = "auto"
    selection: str = "largest"
    jump_policy: str = "line5"
    lookahead_samples: int = 32
    lookahead_density: float = 0.6
    n_jobs: int | None = None
    #: Kernel backend for signatures and set intersections (``None``
    #: defers to the ambient :func:`repro.kernels.use_kernels` selection
    #: and the ``REPRO_KERNELS`` environment variable).  Backends are
    #: bit-identical, so this is a performance knob exactly like
    #: ``n_jobs`` and is likewise never serialized.
    kernels: str | None = None
    signature_cache: bool = True
    #: Cross-round pair-verdict memoization (``None`` defers to the
    #: ``REPRO_PAIR_MEMO`` environment variable, default enabled).
    pair_memo: bool | None = None
    pair_memo_bytes: int = DEFAULT_PAIR_MEMO_BYTES
    #: Persistent fingerprint bin index for collision grouping and
    #: streaming delta candidate generation (``None`` defers to the
    #: ``REPRO_BIN_INDEX`` environment variable, default enabled).
    #: Grouping output is bit-identical either way.
    bin_index: bool | None = None
    bin_index_bytes: int = DEFAULT_BIN_INDEX_BYTES

    def __post_init__(self) -> None:
        if self.budgets is not None:
            object.__setattr__(
                self, "budgets", tuple(int(b) for b in self.budgets)
            )
        if self.selection not in SELECTIONS:
            raise ConfigurationError(
                f"selection must be one of {SELECTIONS}, got {self.selection!r}"
            )
        if self.jump_policy not in JUMP_POLICIES:
            raise ConfigurationError(
                f"jump_policy must be 'line5' or 'lookahead', "
                f"got {self.jump_policy!r}"
            )
        if not isinstance(self.cost_model, CostModel) and self.cost_model not in (
            "calibrate",
            "analytic",
        ):
            raise ConfigurationError(
                f"cost_model must be 'calibrate', 'analytic', or a CostModel, "
                f"got {self.cost_model!r}"
            )
        if self.kernels is not None and self.kernels not in KERNEL_NAMES:
            raise ConfigurationError(
                f"kernels must be one of {KERNEL_NAMES} or None, "
                f"got {self.kernels!r}"
            )
        object.__setattr__(self, "lookahead_samples", int(self.lookahead_samples))
        object.__setattr__(self, "lookahead_density", float(self.lookahead_density))
        object.__setattr__(self, "pair_memo_bytes", int(self.pair_memo_bytes))
        object.__setattr__(self, "bin_index_bytes", int(self.bin_index_bytes))

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view of the *portable* settings.

        ``seed`` and a concrete :class:`CostModel` are excluded — index
        snapshots carry RNG state and the cost model separately, in
        exact form; this dict covers everything rebuildable from plain
        scalars.  ``n_jobs`` and ``kernels`` are excluded too: they are
        machine-local performance knobs that never change results.
        """
        return {
            "budgets": list(self.budgets) if self.budgets is not None else None,
            "epsilon": self.epsilon,
            "noise_factor": self.noise_factor,
            "analytic_pair_cost": self.analytic_pair_cost,
            "pairwise_strategy": self.pairwise_strategy,
            "selection": self.selection,
            "jump_policy": self.jump_policy,
            "lookahead_samples": self.lookahead_samples,
            "lookahead_density": self.lookahead_density,
            "signature_cache": self.signature_cache,
            "pair_memo": self.pair_memo,
            "pair_memo_bytes": self.pair_memo_bytes,
            "bin_index": self.bin_index,
            "bin_index_bytes": self.bin_index_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any], **overrides: Any) -> AdaptiveConfig:
        """Rebuild from :meth:`to_dict` output; ``overrides`` win."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown AdaptiveConfig keys: {sorted(unknown)}"
            )
        merged = dict(data)
        merged.update(overrides)
        budgets = merged.get("budgets")
        if budgets is not None:
            merged["budgets"] = tuple(int(b) for b in budgets)
        return cls(**merged)


def config_with(config: AdaptiveConfig, **overrides: Any) -> AdaptiveConfig:
    """``dataclasses.replace`` with the frozen-field coercions re-run."""
    return replace(config, **overrides)
