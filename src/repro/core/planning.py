"""Analytic work prediction for Adaptive LSH.

The paper's cost model (Definition 3) prices a *finished* run as

    total = sum_i n_i * cost_i  +  n_P * cost_P

where ``n_i`` records stopped at sequence function ``H_i`` and ``n_P``
pairs went through the pairwise function.  This module turns that
formula into a *planner*: given an entity-size profile and a designed
sequence, it predicts where each entity stops climbing the ladder and
what the run will cost — before touching any data.

The prediction assumes *idealized* hashing functions: ``H_1`` already
separates entities (records of different entities never share a
cluster).  Real runs pay extra while early low-selectivity functions
keep unrelated records glued together, so the prediction is a lower
bound that is tight on well-separated data (see
``tests/core/test_planning.py``) and optimistic on noisy data like the
query-log generator's.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..types import ArrayLike
from .cost import CostModel


@dataclass
class WorkEstimate:
    """Predicted work profile of one adaptive filtering run."""

    hash_evaluations: int
    pair_comparisons: int
    total_cost: float
    #: level -> records whose deepest hashing function is that level.
    records_per_level: dict[int, int] = field(default_factory=dict)
    #: entities that end verified by P (size list).
    pairwise_entities: list[int] = field(default_factory=list)

    def summary(self) -> str:
        levels = ", ".join(
            f"H{level}:{count}" for level, count in sorted(self.records_per_level.items())
        )
        return (
            f"~{self.hash_evaluations} hash evals, "
            f"~{self.pair_comparisons} pair comparisons "
            f"(model cost {self.total_cost:.3g}); records per level: {levels}"
        )


def _stop_level(size: int, cost_model: CostModel) -> tuple[int, bool]:
    """(level, via_pairwise): where an entity of ``size`` records stops.

    Mirrors Algorithm 1's Line 5 on a cluster that never splits: climb
    while the marginal hashing cost stays below the estimated pairwise
    cost, then verify with P (or finish at H_L)."""
    level = 1
    while level < cost_model.levels:
        if cost_model.should_jump_to_pairwise(level, size):
            return level, True
        level += 1
    return level, False


def predict_filter_work(
    entity_sizes: ArrayLike,
    k: int,
    cost_model: CostModel,
    budgets: Sequence[int | float] | None = None,
) -> WorkEstimate:
    """Predict the work of ``AdaptiveLSH.run(k)`` on a dataset whose
    ground-truth entity sizes are ``entity_sizes`` (all records,
    singletons included).

    ``budgets`` defaults to the per-level cumulative costs already
    embedded in ``cost_model``; pass the designed ``spent_budget``
    list to count hash evaluations exactly as the pools would.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    sizes = np.sort(np.asarray(entity_sizes, dtype=np.int64))[::-1]
    if sizes.size == 0 or sizes.min() < 1:
        raise ConfigurationError("entity_sizes must be non-empty positive ints")
    if budgets is None:
        budgets = list(cost_model.level_costs)
    if len(budgets) != cost_model.levels:
        raise ConfigurationError(
            f"{len(budgets)} budgets for a {cost_model.levels}-level cost model"
        )

    # Entities at least as large as the k-th largest must be resolved
    # (ties included: Largest-First cannot stop before disambiguating
    # equal-size candidates at rank k).
    threshold = sizes[min(k, sizes.size) - 1]
    processed = sizes[sizes >= threshold]
    untouched = sizes[sizes < threshold]

    hashes = 0
    pairs = 0
    cost = 0.0
    per_level: dict[int, int] = {}
    pairwise_entities: list[int] = []
    for raw_size in processed:
        size = int(raw_size)
        level, via_p = _stop_level(size, cost_model)
        hashes += size * int(budgets[level - 1])
        cost += cost_model.cost_level(level) * size
        per_level[level] = per_level.get(level, 0) + size
        if via_p:
            # Entities that ride the ladder to H_L finish *without* a
            # pairwise pass (H_L outcomes are final, §4.1).
            entity_pairs = size * (size - 1) // 2
            pairs += entity_pairs
            cost += cost_model.cost_p * entity_pairs
            pairwise_entities.append(size)
    # Everything else pays exactly one application of H_1.
    rest = int(untouched.sum())
    if rest:
        hashes += rest * int(budgets[0])
        cost += cost_model.cost_level(1) * rest
        per_level[1] = per_level.get(1, 0) + rest
    return WorkEstimate(
        hash_evaluations=int(hashes),
        pair_comparisons=int(pairs),
        total_cost=float(cost),
        records_per_level=per_level,
        pairwise_entities=pairwise_entities,
    )
