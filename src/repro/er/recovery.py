"""The recovery process (paper §6.1.2).

After ER runs on the filtering output, recovery compares every record
*excluded* by the filter with the resolved clusters and pulls back
records that were mistakenly left out.

Two flavours:

* :func:`perfect_recovery` — the paper's metric convention (§6.2.1):
  for each entity referenced by any record of the filtering output,
  collect *all* of that entity's records.  This is what the
  "Precision/Recall/F1/mAP/mAR with Recovery" metrics are computed on.
* :func:`actual_recovery` — a real algorithm: an excluded record joins
  a cluster if it matches at least one of the cluster's records.

Either way the paper's *benchmark recovery algorithm* cost is
``|O| * (N - |O|)`` pair comparisons (:func:`recovery_pair_count`).
"""

from __future__ import annotations

import numpy as np

from ..datasets.base import Dataset
from ..distance.rules import MatchRule
from ..records import RecordStore


def recovery_pair_count(output_size: int, total: int) -> int:
    """Pairs the benchmark recovery algorithm compares (§6.2.2)."""
    return output_size * (total - output_size)


def perfect_recovery(dataset: Dataset, output_rids) -> list[np.ndarray]:
    """Ground-truth completion of the filtering output.

    Returns one cluster per entity referenced in ``output_rids``, each
    holding *all* records of that entity, largest first.
    """
    output_rids = np.asarray(output_rids, dtype=np.int64)
    entities = np.unique(dataset.labels[output_rids])
    clusters = [
        np.nonzero(dataset.labels == entity)[0].astype(np.int64)
        for entity in entities
    ]
    clusters.sort(key=lambda c: c.size, reverse=True)
    return clusters


def actual_recovery(
    store: RecordStore,
    rule: MatchRule,
    clusters,
    excluded=None,
    max_cluster_sample: "int | None" = None,
) -> list[np.ndarray]:
    """Extend ``clusters`` with excluded records that match any member.

    ``excluded`` defaults to every record not in any cluster.
    ``max_cluster_sample`` optionally caps how many members of each
    cluster are compared per excluded record (a common engineering
    shortcut; ``None`` compares against all, like the benchmark
    algorithm).  A record joining several clusters goes to the first
    (largest) one.
    """
    clusters = [np.asarray(c, dtype=np.int64) for c in clusters]
    clusters.sort(key=lambda c: c.size, reverse=True)
    member_union = (
        np.unique(np.concatenate(clusters)) if clusters else np.zeros(0, np.int64)
    )
    if excluded is None:
        excluded = np.setdiff1d(store.rids, member_union, assume_unique=False)
    remaining = np.asarray(excluded, dtype=np.int64)
    out = []
    # Largest cluster claims matching records first (a record joining
    # several clusters goes to the largest), evaluated as block-matrix
    # sweeps so recovery stays fast on big exclusion sets.
    block = 1024
    for cluster in clusters:
        probe = cluster
        if max_cluster_sample is not None and cluster.size > max_cluster_sample:
            probe = cluster[:max_cluster_sample]
        joined_mask = np.zeros(remaining.size, dtype=bool)
        for lo in range(0, remaining.size, block):
            hi = min(lo + block, remaining.size)
            matches = rule.match_block(store, remaining[lo:hi], probe)
            joined_mask[lo:hi] = matches.any(axis=1)
        out.append(np.sort(np.concatenate([cluster, remaining[joined_mask]])))
        remaining = remaining[~joined_mask]
    out.sort(key=lambda c: c.size, reverse=True)
    return out
