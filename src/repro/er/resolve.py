"""Entity resolution over a (filtered) record set.

The paper's *benchmark ER algorithm* (§6.2.2) "computes all the
pairwise similarities in the whole or reduced dataset"; its cost is
therefore ``C(n, 2)`` pair comparisons.  :func:`resolve` actually runs
that algorithm (transitive closure over the match graph) and
:func:`benchmark_er_pairs` gives the pair count used for time
accounting in the speedup metrics.
"""

from __future__ import annotations

import numpy as np

from ..core.pairwise_fn import PairwiseComputation
from ..distance.rules import MatchRule
from ..records import RecordStore


def resolve(
    store: RecordStore,
    rule: MatchRule,
    rids=None,
    strategy: str = "auto",
) -> list[np.ndarray]:
    """Cluster ``rids`` (default: all records) by transitive closure of
    the match rule; returns all components, largest first."""
    if rids is None:
        rids = store.rids
    rids = np.asarray(rids, dtype=np.int64)
    parts = PairwiseComputation(store, rule, strategy=strategy).apply(rids)
    parts.sort(key=lambda p: p.size, reverse=True)
    return parts


def benchmark_er_pairs(n: int) -> int:
    """Pair comparisons the benchmark ER algorithm performs on ``n``
    records."""
    return n * (n - 1) // 2
