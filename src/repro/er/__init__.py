"""Downstream entity-resolution stage of the Figure-1 workflow:
benchmark ER, the recovery process, and the end-to-end pipeline."""

from .pipeline import TopKPipeline
from .recovery import actual_recovery, perfect_recovery, recovery_pair_count
from .resolve import benchmark_er_pairs, resolve

__all__ = [
    "resolve",
    "benchmark_er_pairs",
    "perfect_recovery",
    "actual_recovery",
    "recovery_pair_count",
    "TopKPipeline",
]
