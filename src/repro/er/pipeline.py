"""The end-to-end Figure-1 workflow: filtering → ER on the reduced
dataset → (optional) recovery → top-k entities."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


from ..core.result import FilterResult
from ..datasets.base import Dataset
from ..errors import ConfigurationError
from .recovery import actual_recovery, recovery_pair_count
from .resolve import benchmark_er_pairs, resolve


@dataclass
class PipelineResult:
    """Top-k entities plus the timing breakdown of each stage."""

    #: Resolved entity clusters (record-id arrays), largest first.
    entities: list
    filter_result: FilterResult
    er_time: float
    recovery_time: float = 0.0
    info: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.filter_result.wall_time + self.er_time + self.recovery_time


class TopKPipeline:
    """Compose a filtering method with the downstream ER stage.

    ``filter_method`` is any object with ``run(k) -> FilterResult``
    (:class:`~repro.core.adaptive.AdaptiveLSH`,
    :class:`~repro.baselines.lsh_blocking.LSHBlocking`, ...).
    """

    def __init__(
        self,
        dataset: Dataset,
        filter_method,
        recover: bool = False,
        k_hat: "int | None" = None,
    ):
        if not hasattr(filter_method, "run"):
            raise ConfigurationError("filter_method must expose run(k)")
        self.dataset = dataset
        self.filter_method = filter_method
        self.recover = recover
        self.k_hat = k_hat

    @classmethod
    def adaptive(
        cls,
        dataset: Dataset,
        config=None,
        observer=None,
        recover: bool = False,
        k_hat: "int | None" = None,
    ) -> "TopKPipeline":
        """A pipeline whose filter stage is an :class:`AdaptiveLSH`
        built from an :class:`~repro.core.AdaptiveConfig`."""
        from ..core import AdaptiveLSH

        method = AdaptiveLSH(
            dataset.store, dataset.rule, config=config, observer=observer
        )
        return cls(dataset, method, recover=recover, k_hat=k_hat)

    def run(self, k: int) -> PipelineResult:
        """Produce the top-``k`` resolved entities.

        The filter is asked for ``k_hat`` clusters (default ``k``; ask
        for more to trade performance for recall, §6.1.2), ER resolves
        the reduced dataset exactly, and recovery (if enabled) pulls
        back records the filter missed.
        """
        k_hat = self.k_hat or k
        if k_hat < k:
            raise ConfigurationError(f"k_hat ({k_hat}) must be >= k ({k})")
        filtered = self.filter_method.run(k_hat)
        store = self.dataset.store

        started = time.perf_counter()
        entities = resolve(store, self.dataset.rule, filtered.output_rids)
        er_time = time.perf_counter() - started

        recovery_time = 0.0
        if self.recover:
            started = time.perf_counter()
            entities = actual_recovery(store, self.dataset.rule, entities)
            recovery_time = time.perf_counter() - started

        entities = sorted(entities, key=lambda c: c.size, reverse=True)[:k]
        return PipelineResult(
            entities=entities,
            filter_result=filtered,
            er_time=er_time,
            recovery_time=recovery_time,
            info={
                "k": k,
                "k_hat": k_hat,
                "er_pairs": benchmark_er_pairs(filtered.output_size),
                "recovery_pairs": (
                    recovery_pair_count(filtered.output_size, len(store))
                    if self.recover
                    else 0
                ),
            },
        )
