"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine bugs (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A record does not conform to the schema expected by a rule or family."""


class DesignError(ReproError):
    """The (w, z)-scheme optimization program has no feasible solution."""


class ConfigurationError(ReproError):
    """Invalid parameter combination passed to a public API entry point."""


class ResolvableExceededError(ConfigurationError):
    """``k`` exceeds the number of clusters the method can resolve.

    Carries ``resolvable`` — the exact number of final clusters the run
    produced — so serving-layer callers can clamp and retry without
    parsing the message.
    """

    def __init__(self, k: int, resolvable: int) -> None:
        super().__init__(
            f"k={k} exceeds the {resolvable} resolvable clusters; "
            f"rerun with k <= {resolvable}"
        )
        self.k = int(k)
        self.resolvable = int(resolvable)


class CalibrationError(ReproError):
    """The cost model could not be calibrated (e.g., empty sample)."""


class DatasetError(ReproError):
    """A synthetic dataset generator received unsatisfiable parameters."""


class StructureError(ReproError):
    """A union-find / bin-index structure was driven outside its
    contract (duplicate insert, iterating a merged node) or detected
    internal corruption (leaf chain inconsistent with recorded size)."""


class AnalysisError(ReproError):
    """The invariant linter could not analyze its input (bad path,
    unparseable source, or a corrupt baseline file)."""


class SnapshotError(ReproError):
    """An index snapshot could not be captured, loaded, or restored
    (wrong magic/version, store mismatch, or corrupt state arrays)."""


class ServiceError(ReproError):
    """The resolver service could not start, route, or complete a
    request (worker died, malformed wire payload, bad endpoint)."""
