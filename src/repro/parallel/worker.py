"""Worker-process side of the execution pool.

Module-level state plays two roles:

* ``_PARENT_*`` registries are filled **in the parent** before the pool
  forks; fork-started workers inherit them and get zero-copy
  (copy-on-write) views of the store and hash families.
* ``_local_*`` slots are filled **inside each worker** by
  :func:`init_worker` (and lazily by the task functions) — on spawn
  platforms they are rebuilt from pickled payloads instead.

Task functions are pure with respect to the parent: they return arrays
(plus their wall-time) and never mutate shared state, so the parent can
merge results in submission order and reproduce the serial computation
bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import ConfigurationError
from ..kernels import use_kernels
from ..obs.clock import monotonic
from ..records import RecordStore
from ..types import AnyArray, IntArray
from .sharing import StorePayload, store_from_payload

if TYPE_CHECKING:
    from ..distance.rules import MatchRule
    from ..lsh.families import HashFamily

#: Parent-side registries, inherited by fork-started workers.
_PARENT_STORES: dict[int, RecordStore] = {}
_PARENT_FAMILIES: dict[int, HashFamily] = {}

#: Worker-side state, set by :func:`init_worker` / the task functions.
_local_store: RecordStore | None = None
_local_families: dict[int, HashFamily] = {}


def register_parent_store(token: int, store: RecordStore) -> None:
    """Make ``store`` visible to future fork-started workers."""
    _PARENT_STORES[token] = store


def register_parent_family(token: int, family: HashFamily) -> None:
    """Make ``family`` visible to future fork-started workers."""
    _PARENT_FAMILIES[token] = family


def forget_parent(store_token: int, family_tokens: list[int]) -> None:
    """Drop a closed pool's registry entries (parent side)."""
    _PARENT_STORES.pop(store_token, None)
    for token in family_tokens:
        _PARENT_FAMILIES.pop(token, None)


def init_worker(token: int, payload: StorePayload | None) -> None:
    """Process-pool initializer: bind this worker to its store.

    ``payload`` is ``None`` on fork platforms (the store is inherited
    through :data:`_PARENT_STORES`); on spawn platforms it carries the
    flattened store and is rebuilt exactly once per worker.
    """
    global _local_store
    if payload is not None:
        _local_store = store_from_payload(payload)
    else:
        _local_store = _PARENT_STORES[token]


def _store() -> RecordStore:
    if _local_store is None:
        raise ConfigurationError("worker used before init_worker ran")
    return _local_store


def _build_family(store: RecordStore, spec: dict[str, Any]) -> HashFamily:
    """Rebuild a family from its payload spec (spawn-platform path)."""
    kind = spec["kind"]
    options = spec["options"]
    if kind == "minhash":
        from ..lsh.minhash import MinHashFamily

        return MinHashFamily(
            store,
            spec["field"],
            seed=0,
            bits=options["bits"],
            kernels=options.get("kernels"),
        )
    if kind == "hyperplane":
        from ..lsh.hyperplanes import RandomHyperplaneFamily

        return RandomHyperplaneFamily(store, spec["field"], seed=0)
    if kind == "pstable":
        from ..lsh.pstable import PStableFamily

        return PStableFamily(
            store, spec["field"], options["bucket_width"], seed=0
        )
    raise ConfigurationError(f"unknown family payload kind {kind!r}")


def _family(token: int, spec: dict[str, Any]) -> HashFamily:
    """This worker's instance of the family behind ``token``.

    Resolution order: already materialized here → inherited from the
    parent (fork) → rebuilt from the payload spec (spawn).  The params
    in ``spec`` are adopted every call, because the parent's family may
    have grown columns since this worker last saw it.
    """
    family = _local_families.get(token)
    if family is None:
        family = _PARENT_FAMILIES.get(token)
        if family is None:
            family = _build_family(_store(), spec)
        _local_families[token] = family
    family.adopt_params(spec["params"])
    return family


def signature_task(
    token: int, spec: dict[str, Any], rids: IntArray, start: int, stop: int
) -> tuple[AnyArray, float]:
    """Compute hash columns ``[start, stop)`` for one chunk of records.

    Row-independent by the columnar-determinism contract of
    :class:`~repro.lsh.families.HashFamily`, so the parent can stack
    chunk results in span order and match the serial array exactly.
    """
    started = monotonic()
    family = _family(token, spec)
    values = family.compute(np.asarray(rids, dtype=np.int64), start, stop)
    return values, monotonic() - started


def pairwise_block_task(
    rule: MatchRule,
    block: IntArray,
    earlier: IntArray,
    kernels: str | None = None,
) -> tuple[IntArray, IntArray, IntArray, IntArray, float]:
    """Match one row-block: intra-block and block-vs-earlier edges.

    Returns edge index pairs in exactly the order the serial blocked
    strategy enumerates them (``np.nonzero`` row-major order), so the
    parent can replay unions block by block and reproduce the serial
    forest bit for bit.  ``kernels`` carries the parent's backend
    selection across the process boundary (ambient context variables do
    not); backends are bit-identical, so it only affects speed.
    """
    store = _store()
    started = monotonic()
    with use_kernels(kernels):
        square = rule.pairwise_match(store, block)
        intra_i, intra_j = np.nonzero(np.triu(square, k=1))
        if earlier.size:
            cross = rule.match_block(store, block, earlier)
            cross_i, cross_j = np.nonzero(cross)
        else:
            cross_i = np.zeros(0, dtype=np.int64)
            cross_j = np.zeros(0, dtype=np.int64)
    return intra_i, intra_j, cross_i, cross_j, monotonic() - started


def evaluate_block_jobs(
    store: RecordStore,
    rule: MatchRule,
    pair_rids: IntArray,
    rects: list[tuple[IntArray, IntArray]],
) -> tuple[IntArray, IntArray, list[tuple[IntArray, IntArray]]]:
    """Evaluate the non-memoized jobs of one row-block.

    ``pair_rids`` is evaluated all-pairs (upper-triangle edges);
    each ``(rids_a, rids_b)`` rectangle in ``rects`` is evaluated with
    ``match_block`` (the memo-mask metadata computed by the parent's
    block plan).  Returns match edges in *job-local* coordinates, each
    list in ``np.nonzero`` row-major order; the parent maps them back
    through the plan's (sorted, hence order-preserving) index arrays.

    Takes the store explicitly so the serial memo path shares this
    exact evaluation with the worker task.
    """
    empty = np.zeros(0, dtype=np.int64)
    if pair_rids.size >= 2:
        square = rule.pairwise_match(store, pair_rids)
        raw_i, raw_j = np.nonzero(np.triu(square, k=1))
        pair_i = np.asarray(raw_i, dtype=np.int64)
        pair_j = np.asarray(raw_j, dtype=np.int64)
    else:
        pair_i = pair_j = empty
    rect_edges: list[tuple[IntArray, IntArray]] = []
    for rids_a, rids_b in rects:
        if rids_a.size and rids_b.size:
            raw_a, raw_b = np.nonzero(rule.match_block(store, rids_a, rids_b))
            rect_edges.append(
                (
                    np.asarray(raw_a, dtype=np.int64),
                    np.asarray(raw_b, dtype=np.int64),
                )
            )
        else:
            rect_edges.append((empty, empty))
    return pair_i, pair_j, rect_edges


def pairwise_jobs_task(
    rule: MatchRule,
    pair_rids: IntArray,
    rects: list[tuple[IntArray, IntArray]],
    kernels: str | None = None,
) -> tuple[IntArray, IntArray, list[tuple[IntArray, IntArray]], float]:
    """Worker wrapper around :func:`evaluate_block_jobs`."""
    store = _store()
    started = monotonic()
    with use_kernels(kernels):
        pair_i, pair_j, rect_edges = evaluate_block_jobs(
            store, rule, pair_rids, rects
        )
    return pair_i, pair_j, rect_edges, monotonic() - started
