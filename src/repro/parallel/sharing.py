"""Sharing a :class:`~repro.records.RecordStore` with worker processes.

On platforms whose multiprocessing start method is ``fork`` (Linux —
the production target), workers inherit the parent's address space, so
the store's arrays are shared copy-on-write: registering the store in a
module-global table before the pool forks gives every worker a
zero-copy view.  :mod:`repro.parallel.worker` holds that table.

On spawn/forkserver platforms nothing is inherited, so the pool ships a
:class:`StorePayload` — the store flattened to plain picklable arrays —
through the worker initializer instead, and the worker rebuilds the
store once via the trusted no-copy constructor.

Stores backed by an on-disk columnar layout (:mod:`repro.storage`) have
a third, cheaper option on *every* start method: a :class:`DiskStoreRef`
— just ``(path, store_version, lo, hi)`` — which the worker resolves by
memory-mapping the layout itself.  No column bytes are pickled at all;
parent and workers share the same page-cache pages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SnapshotError
from ..records import RecordStore, Schema, ShingleColumn
from ..types import FloatArray, IntArray


@dataclass
class StorePayload:
    """A :class:`RecordStore` flattened to picklable parts.

    Shingle columns travel as ``(flat, lengths)`` pairs rather than a
    list of per-record arrays so the payload pickles as a handful of
    large buffers instead of thousands of small objects.
    """

    schema: Schema
    vectors: dict[str, FloatArray]
    shingle_flat: dict[str, IntArray]
    shingle_lengths: dict[str, IntArray]
    n: int

    @property
    def nbytes(self) -> int:
        """Column bytes this payload serializes (the pickle cost)."""
        total = 0
        for mat in self.vectors.values():
            total += int(mat.nbytes)
        for flat in self.shingle_flat.values():
            total += int(flat.nbytes)
        for lengths in self.shingle_lengths.values():
            total += int(lengths.nbytes)
        return total


@dataclass(frozen=True)
class DiskStoreRef:
    """A zero-copy handle to rows ``[lo, hi)`` of an on-disk layout.

    Resolving re-opens the layout with ``mmap_mode="r"`` and takes a
    :meth:`~repro.records.RecordStore.slice_view`, so shipping one of
    these to a worker transfers a path and three integers — never the
    columns.  Layouts are append-only: a layout whose ``store_version``
    has moved past ``store_version`` still holds the identical bytes
    for every row below ``hi``, so refs stay valid across rollovers.
    """

    path: str
    store_version: int
    lo: int
    hi: int


def payload_from_store(store: RecordStore) -> StorePayload:
    """Flatten ``store`` into a :class:`StorePayload`."""
    vectors: dict[str, FloatArray] = {}
    shingle_flat: dict[str, IntArray] = {}
    shingle_lengths: dict[str, IntArray] = {}
    for name in store.schema.names:
        kind = store.schema.kind_of(name)
        if kind.value == "vector":
            vectors[name] = store.vectors(name)
        else:
            column = store.shingle_sets(name)
            shingle_flat[name] = column.flat
            shingle_lengths[name] = np.ascontiguousarray(column.sizes())
    return StorePayload(
        schema=store.schema,
        vectors=vectors,
        shingle_flat=shingle_flat,
        shingle_lengths=shingle_lengths,
        n=len(store),
    )


def store_from_payload(payload: StorePayload) -> RecordStore:
    """Rebuild the :class:`RecordStore` a payload was made from.

    The arrays in the payload are exactly the validated columns of the
    source store, so this goes through the trusted constructor and the
    result is indistinguishable from the original for every batch
    accessor.
    """
    shingles: dict[str, ShingleColumn] = {}
    for name, flat in payload.shingle_flat.items():
        lengths = payload.shingle_lengths[name]
        offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        shingles[name] = ShingleColumn(
            offsets, np.ascontiguousarray(flat).astype(np.int64, copy=False)
        )
    return RecordStore._from_parts(
        payload.schema, dict(payload.vectors), shingles, payload.n
    )


def ref_from_store(store: RecordStore) -> DiskStoreRef | None:
    """A :class:`DiskStoreRef` for ``store``, or ``None`` when the
    store's columns live only in memory."""
    backing = store.backing
    if backing is None:
        return None
    return DiskStoreRef(
        backing.path, backing.store_version, backing.lo, backing.hi
    )


def store_from_ref(ref: DiskStoreRef) -> RecordStore:
    """Re-open the rows a :class:`DiskStoreRef` points at (mmap)."""
    from ..storage import StoreLayout  # records -> storage cycle guard

    layout = StoreLayout(ref.path)
    if layout.store_version < ref.store_version or layout.n < ref.hi:
        raise SnapshotError(
            f"layout at {ref.path} (version {layout.store_version}, "
            f"n={layout.n}) is older than the ref "
            f"(version {ref.store_version}, hi={ref.hi}); layouts are "
            "append-only, so this ref was made against different files"
        )
    return layout.open().slice_view(ref.lo, ref.hi)


def resolve_store_arg(
    store: RecordStore | StorePayload | DiskStoreRef,
) -> RecordStore:
    """Materialize any of the three transferable store shapes."""
    if isinstance(store, RecordStore):
        return store
    if isinstance(store, DiskStoreRef):
        return store_from_ref(store)
    return store_from_payload(store)
