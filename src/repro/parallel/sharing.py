"""Sharing a :class:`~repro.records.RecordStore` with worker processes.

On platforms whose multiprocessing start method is ``fork`` (Linux —
the production target), workers inherit the parent's address space, so
the store's arrays are shared copy-on-write: registering the store in a
module-global table before the pool forks gives every worker a
zero-copy view.  :mod:`repro.parallel.worker` holds that table.

On spawn/forkserver platforms nothing is inherited, so the pool ships a
:class:`StorePayload` — the store flattened to plain picklable arrays —
through the worker initializer instead, and the worker rebuilds the
store once via the trusted no-copy constructor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records import RecordStore, Schema
from ..types import FloatArray, IntArray


@dataclass
class StorePayload:
    """A :class:`RecordStore` flattened to picklable parts.

    Shingle columns travel as ``(flat, lengths)`` pairs rather than a
    list of per-record arrays so the payload pickles as a handful of
    large buffers instead of thousands of small objects.
    """

    schema: Schema
    vectors: dict[str, FloatArray]
    shingle_flat: dict[str, IntArray]
    shingle_lengths: dict[str, IntArray]
    n: int


def payload_from_store(store: RecordStore) -> StorePayload:
    """Flatten ``store`` into a :class:`StorePayload`."""
    vectors: dict[str, FloatArray] = {}
    shingle_flat: dict[str, IntArray] = {}
    shingle_lengths: dict[str, IntArray] = {}
    for name in store.schema.names:
        kind = store.schema.kind_of(name)
        if kind.value == "vector":
            vectors[name] = store.vectors(name)
        else:
            sets = store.shingle_sets(name)
            lengths = np.array([s.size for s in sets], dtype=np.int64)
            if lengths.sum():
                flat = np.concatenate(sets)
            else:
                flat = np.zeros(0, dtype=np.int64)
            shingle_flat[name] = flat
            shingle_lengths[name] = lengths
    return StorePayload(
        schema=store.schema,
        vectors=vectors,
        shingle_flat=shingle_flat,
        shingle_lengths=shingle_lengths,
        n=len(store),
    )


def store_from_payload(payload: StorePayload) -> RecordStore:
    """Rebuild the :class:`RecordStore` a payload was made from.

    The arrays in the payload are exactly the validated columns of the
    source store, so this goes through the trusted constructor and the
    result is indistinguishable from the original for every batch
    accessor.
    """
    shingles: dict[str, list[IntArray]] = {}
    for name, flat in payload.shingle_flat.items():
        lengths = payload.shingle_lengths[name]
        bounds = np.cumsum(lengths)[:-1]
        shingles[name] = [np.ascontiguousarray(s) for s in np.split(flat, bounds)]
    return RecordStore._from_parts(
        payload.schema, dict(payload.vectors), shingles, payload.n
    )
