"""Parallel execution layer: a persistent worker pool for the hot paths.

The package provides one public object, :class:`ExecutionPool` — a
process pool bound to one :class:`~repro.records.RecordStore` that
parallelizes

* per-batch signature computation (fanned out through
  :meth:`~repro.lsh.families.SignaturePool.ensure`), and
* the blocked strategy of the pairwise function ``P`` (row-blocks
  fanned across workers).

Work partitioning is deterministic (chunk boundaries depend only on
input size and ``n_jobs``) and results are merged in submission order,
so a parallel run produces bit-identical output to a serial run with
the same seed.  Small inputs never cross the process boundary: the pool
falls back to in-process execution below configurable thresholds, and
the underlying :class:`concurrent.futures.ProcessPoolExecutor` is only
started on the first dispatch that actually crosses them.

See ``docs/PERFORMANCE.md`` for the full execution model, the
``n_jobs`` semantics (including the ``REPRO_N_JOBS`` environment
default), and the determinism guarantees.
"""

from .partition import chunk_spans
from .pool import ExecutionPool, resolve_n_jobs
from .sharing import StorePayload, payload_from_store, store_from_payload

__all__ = [
    "ExecutionPool",
    "StorePayload",
    "chunk_spans",
    "payload_from_store",
    "resolve_n_jobs",
    "store_from_payload",
]
