"""Deterministic work partitioning.

Chunk boundaries are a pure function of ``(n_items, n_chunks,
min_chunk)`` — never of timing, worker availability, or queue state —
so the same input always produces the same task list, and merging task
results in submission order reproduces the serial result exactly.
"""

from __future__ import annotations


def chunk_spans(
    n_items: int, n_chunks: int, min_chunk: int = 1
) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous
    half-open spans of near-equal size, each at least ``min_chunk`` long
    (except possibly a single short final span when ``n_items`` is not
    a multiple).

    Returns ``[(start, stop), ...]`` covering ``[0, n_items)`` in
    order; empty when ``n_items`` is 0.
    """
    if n_items <= 0:
        return []
    n_chunks = max(1, min(n_chunks, n_items // max(1, min_chunk)) or 1)
    base, extra = divmod(n_items, n_chunks)
    spans: list[tuple[int, int]] = []
    start = 0
    for i in range(n_chunks):
        stop = start + base + (1 if i < extra else 0)
        if stop > start:
            spans.append((start, stop))
        start = stop
    return spans
