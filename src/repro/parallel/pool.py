"""The persistent execution pool and the ``n_jobs`` resolution funnel.

One :class:`ExecutionPool` is bound to one
:class:`~repro.records.RecordStore` and serves both hot paths:
signature batches (through :class:`~repro.lsh.families.SignaturePool`)
and blocked pairwise matching (through
:class:`~repro.core.pairwise_fn.PairwiseComputation`).  The underlying
:class:`~concurrent.futures.ProcessPoolExecutor` is created lazily on
the first dispatch that clears the size thresholds, so serial-sized
workloads never pay for a fork.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import itertools
import multiprocessing
import os
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import ConfigurationError
from ..types import AnyArray, IntArray
from . import worker
from .partition import chunk_spans
from .sharing import payload_from_store

if TYPE_CHECKING:
    from ..distance.rules import MatchRule
    from ..lsh.families import HashFamily
    from ..obs.observer import RunObserver
    from ..records import RecordStore

#: Environment variable consulted when ``n_jobs`` is not given
#: explicitly; the CLI's ``--n-jobs`` flag sets it so the knob reaches
#: every component without threading a parameter through each call.
N_JOBS_ENV = "REPRO_N_JOBS"

#: Minimum ``rows * new_columns`` of a signature batch before it is
#: fanned out; below this the per-task pickling overhead dominates.
MIN_SIGNATURE_WORK = 16_384
#: Minimum records per signature chunk (and per-chunk lower bound used
#: by the deterministic partitioner).
MIN_SIGNATURE_ROWS = 64
#: Minimum input size before blocked pairwise matching is fanned out.
#: Must span at least two row-blocks or there is nothing to overlap.
MIN_PAIRWISE_ROWS = 1024

_token_counter = itertools.count(1)


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve an ``n_jobs`` knob to a concrete worker count.

    ``None`` falls back to the ``REPRO_N_JOBS`` environment variable,
    and to ``1`` (serial) when that is unset.  Negative values count
    from the CPU pool, joblib-style: ``-1`` means all CPUs, ``-2`` all
    but one, and so on.  ``0`` is rejected.
    """
    if n_jobs is None:
        raw = os.environ.get(N_JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{N_JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        n_jobs = max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    if n_jobs == 0:
        raise ConfigurationError("n_jobs must be a non-zero integer")
    return n_jobs


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform.

    Fork workers inherit the parent address space (stores shared
    copy-on-write); spawn platforms ship a
    :class:`~repro.parallel.sharing.StorePayload` instead.  The serve
    layer's shard processes make the same choice through this predicate.
    """
    return "fork" in multiprocessing.get_all_start_methods()


#: Backward-compatible private alias (pre-serve-layer name).
_fork_available = fork_available


class ExecutionPool:
    """Persistent worker pool bound to one record store.

    Parameters
    ----------
    store:
        The store all dispatched tasks read from.
    n_jobs:
        Worker count; resolved through :func:`resolve_n_jobs`.  A pool
        resolved to 1 is permanently serial: every ``compute_*`` method
        returns ``None`` (meaning "caller does it in-process") and no
        processes are ever started.
    observer:
        Optional :class:`~repro.obs.observer.RunObserver`; when set and
        enabled, dispatches feed ``parallel.*`` counters/histograms.
    """

    def __init__(
        self,
        store: RecordStore,
        n_jobs: int | None = None,
        observer: RunObserver | None = None,
        min_signature_work: int = MIN_SIGNATURE_WORK,
        min_signature_rows: int = MIN_SIGNATURE_ROWS,
        min_pairwise_rows: int = MIN_PAIRWISE_ROWS,
    ) -> None:
        self.store = store
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.observer = observer
        self.min_signature_work = int(min_signature_work)
        self.min_signature_rows = int(min_signature_rows)
        self.min_pairwise_rows = int(min_pairwise_rows)
        self._store_token = next(_token_counter)
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None
        self._family_tokens: dict[int, int] = {}
        self._family_refs: list[HashFamily] = []
        #: Work counters surfaced through :meth:`stats` / ``RunReport``.
        self.tasks_dispatched = 0
        self.parallel_calls = 0
        self.serial_calls = 0
        self.worker_seconds = 0.0
        if self.n_jobs > 1 and _fork_available():
            worker.register_parent_store(self._store_token, store)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def serial(self) -> bool:
        """True when this pool never dispatches to worker processes."""
        return self.n_jobs <= 1

    def _ensure_executor(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._executor is None:
            if _fork_available():
                # Fork workers inherit the parent's address space: the
                # store and families registered before this point are
                # shared copy-on-write, no serialization at all.
                ctx = multiprocessing.get_context("fork")
                initargs: tuple[int, Any] = (self._store_token, None)
            else:
                ctx = multiprocessing.get_context()
                initargs = (self._store_token, payload_from_store(self.store))
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.n_jobs,
                mp_context=ctx,
                initializer=worker.init_worker,
                initargs=initargs,
            )
            # A live executor at interpreter exit races the stdlib's
            # own threading-shutdown hook (_python_exit wakes a pipe
            # the manager thread is concurrently closing -> spurious
            # "Bad file descriptor" noise on stderr).  Regular atexit
            # callbacks run before that hook, so closing here is
            # always clean; an explicit close() unregisters.
            atexit.register(self.close)
        return self._executor

    def close(self, wait: bool = True) -> None:
        """Shut the worker processes down and drop registry entries."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=True)
            self._executor = None
            atexit.unregister(self.close)
        worker.forget_parent(
            self._store_token, list(self._family_tokens.values())
        )
        self._family_tokens.clear()
        self._family_refs.clear()

    def __enter__(self) -> ExecutionPool:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close(wait=False)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # family registration
    # ------------------------------------------------------------------
    def register_family(self, family: HashFamily) -> None:
        """Pre-register a hash family so fork-started workers inherit it
        (zero rebuild cost).  Registration after the pool has forked is
        harmless — workers then rebuild from the task payload instead.
        """
        self._family_token(family)

    def _family_token(self, family: HashFamily) -> int:
        key = id(family)
        token = self._family_tokens.get(key)
        if token is None:
            token = next(_token_counter)
            self._family_tokens[key] = token
            # Strong reference keeps id(family) stable for the pool's life.
            self._family_refs.append(family)
            if self._executor is None and not self.serial and _fork_available():
                worker.register_parent_family(token, family)
        return token

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def compute_signatures(
        self, family: HashFamily, rids: IntArray, start: int, stop: int
    ) -> AnyArray | None:
        """Hash columns ``[start, stop)`` of ``rids``, fanned across
        workers; ``None`` means the batch is below the parallel
        threshold (or the family has no payload) and the caller should
        compute in-process.

        Rows are partitioned into deterministic contiguous chunks and
        the chunk results stacked in span order, which — by the
        columnar row-independence of ``HashFamily.compute`` — equals
        the serial result exactly.
        """
        rows = int(rids.size)
        cols = stop - start
        if (
            self.serial
            or rows < 2 * self.min_signature_rows
            or rows * cols < self.min_signature_work
        ):
            self.serial_calls += 1
            return None
        spec = family.parallel_payload(stop)
        if spec is None:
            self.serial_calls += 1
            return None
        spans = chunk_spans(rows, self.n_jobs, max(1, self.min_signature_rows))
        if len(spans) < 2:
            self.serial_calls += 1
            return None
        token = self._family_token(family)
        executor = self._ensure_executor()
        futures = [
            executor.submit(
                worker.signature_task, token, spec, rids[lo:hi], start, stop
            )
            for lo, hi in spans
        ]
        parts: list[AnyArray] = []
        seconds = 0.0
        for future in futures:
            values, task_seconds = future.result()
            parts.append(values)
            seconds += task_seconds
        self._account(len(futures), seconds)
        return np.vstack(parts)

    def pairwise_block_edges(
        self,
        rule: MatchRule,
        rids: IntArray,
        block_size: int,
        kernels: str | None = None,
    ) -> list[tuple[int, IntArray, IntArray, IntArray, IntArray]] | None:
        """Match every row-block of ``rids`` against itself and all
        earlier rows, fanned across workers.

        Returns ``[(block_start, intra_i, intra_j, cross_i, cross_j),
        ...]`` in ascending block order — each edge list in the serial
        ``np.nonzero`` enumeration order — so the caller can replay
        unions exactly as the serial blocked strategy would.  ``None``
        means below threshold; caller should run serially.
        """
        m = int(rids.size)
        if self.serial or m < self.min_pairwise_rows or m <= block_size:
            self.serial_calls += 1
            return None
        executor = self._ensure_executor()
        futures = []
        for block_start in range(0, m, block_size):
            block = rids[block_start : block_start + block_size]
            earlier = rids[:block_start]
            futures.append(
                (
                    block_start,
                    executor.submit(
                        worker.pairwise_block_task, rule, block, earlier, kernels
                    ),
                )
            )
        bundles: list[tuple[int, IntArray, IntArray, IntArray, IntArray]] = []
        seconds = 0.0
        for block_start, future in futures:
            intra_i, intra_j, cross_i, cross_j, task_seconds = future.result()
            seconds += task_seconds
            bundles.append((block_start, intra_i, intra_j, cross_i, cross_j))
        self._account(len(futures), seconds)
        return bundles

    def pairwise_job_edges(
        self,
        rule: MatchRule,
        jobs: list[tuple[IntArray, list[tuple[IntArray, IntArray]]]],
        total_rows: int,
        block_size: int,
        kernels: str | None = None,
    ) -> (
        list[tuple[IntArray, IntArray, list[tuple[IntArray, IntArray]]]] | None
    ):
        """Evaluate per-block non-memoized jobs across workers.

        ``jobs`` holds one ``(pair_rids, rects)`` memo-mask bundle per
        row-block, in ascending block order (the parent's pair-verdict
        memo plan; see
        :func:`~repro.parallel.worker.evaluate_block_jobs`).  The
        result carries one job-local edge bundle per block, in the same
        order.  ``None`` means below the same thresholds as
        :meth:`pairwise_block_edges`; caller evaluates in-process.
        """
        if (
            self.serial
            or total_rows < self.min_pairwise_rows
            or total_rows <= block_size
        ):
            self.serial_calls += 1
            return None
        executor = self._ensure_executor()
        futures = [
            executor.submit(
                worker.pairwise_jobs_task, rule, pair_rids, rects, kernels
            )
            for pair_rids, rects in jobs
        ]
        bundles: list[
            tuple[IntArray, IntArray, list[tuple[IntArray, IntArray]]]
        ] = []
        seconds = 0.0
        for future in futures:
            pair_i, pair_j, rect_edges, task_seconds = future.result()
            seconds += task_seconds
            bundles.append((pair_i, pair_j, rect_edges))
        self._account(len(futures), seconds)
        return bundles

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _account(self, n_tasks: int, seconds: float) -> None:
        self.parallel_calls += 1
        self.tasks_dispatched += n_tasks
        self.worker_seconds += seconds
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.counter("parallel.tasks_dispatched").inc(n_tasks)
            obs.counter("parallel.calls").inc()
            obs.histogram("parallel.worker_seconds").observe(seconds)

    def stats(self) -> dict[str, Any]:
        """Pool work summary for run reports."""
        return {
            "n_jobs": int(self.n_jobs),
            "tasks_dispatched": int(self.tasks_dispatched),
            "parallel_calls": int(self.parallel_calls),
            "serial_calls": int(self.serial_calls),
            "worker_seconds": float(self.worker_seconds),
        }
