"""Speedup accounting (paper §6.2.2).

The paper defines speedups against a *benchmark ER algorithm* that
computes all pairwise similarities:

* ``Speedup w/o Recovery  = WholeTime / (FilteringTime + ReducedTime)``
* ``Speedup with Recovery = WholeTime / (FilteringTime + ReducedTime
  + RecoveryTime)``

where ``WholeTime`` is benchmark ER on the full dataset,
``ReducedTime`` benchmark ER on the filtering output, and
``RecoveryTime`` the benchmark recovery algorithm (every output record
against every excluded record).  All three are pair counts multiplied
by a per-pair comparison cost, which is measured on the actual data —
so the speedups are reproducible regardless of how fast this machine's
NumPy happens to be.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..distance.rules import MatchRule
from ..records import RecordStore
from ..rngutil import SeedLike, make_rng

#: Pairs timed when measuring the per-pair cost.
SAMPLE_PAIRS = 200


@dataclass
class SpeedupModel:
    """Benchmark ER / recovery time model with a measured per-pair cost."""

    seconds_per_pair: float
    total_records: int

    @classmethod
    def measure(
        cls,
        store: RecordStore,
        rule: MatchRule,
        seed: SeedLike = None,
        samples: int = SAMPLE_PAIRS,
    ) -> "SpeedupModel":
        """Time random pair comparisons on the real data.

        Pairs are evaluated as a block matrix — the same way the
        benchmark ER algorithm (PairwiseComputation) evaluates them —
        so the model's per-pair constant matches reality.
        """
        import numpy as np

        rng = make_rng(seed)
        n = len(store)
        rows = rng.choice(n, size=min(samples, n), replace=False).astype(np.int64)
        cols = rng.choice(n, size=min(samples, n), replace=False).astype(np.int64)
        started = time.perf_counter()
        repeats = 3
        for _ in range(repeats):
            rule.match_block(store, rows, cols)
        elapsed = time.perf_counter() - started
        return cls(elapsed / (repeats * rows.size * cols.size), n)

    # ------------------------------------------------------------------
    def whole_time(self) -> float:
        n = self.total_records
        return self.seconds_per_pair * n * (n - 1) / 2.0

    def reduced_time(self, output_size: int) -> float:
        return self.seconds_per_pair * output_size * (output_size - 1) / 2.0

    def recovery_time(self, output_size: int) -> float:
        return self.seconds_per_pair * output_size * (self.total_records - output_size)

    def speedup_without_recovery(self, filtering_time: float, output_size: int) -> float:
        return self.whole_time() / (filtering_time + self.reduced_time(output_size))

    def speedup_with_recovery(self, filtering_time: float, output_size: int) -> float:
        denom = (
            filtering_time
            + self.reduced_time(output_size)
            + self.recovery_time(output_size)
        )
        return self.whole_time() / denom
