"""Plain-text / Markdown rendering of experiment results."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


def render_table(
    rows: Iterable[dict[str, Any]], columns: Sequence[str] | None = None
) -> str:
    """Render dict rows as a GitHub-flavoured Markdown table.

    Column order follows ``columns`` if given, else the keys of the
    first row; missing cells render empty.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(str(c) for c in columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = [
        "| " + " | ".join(_fmt(row.get(c, "")) for c in columns) + " |"
        for row in rows
    ]
    return "\n".join([header, rule, *body])


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_series_chart(
    series: dict,
    width: int = 48,
    log_y: bool = False,
    y_label: str = "",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as an ASCII horizontal-bar chart.

    One line per point, grouped by series, bar length proportional to
    ``y`` (optionally on a log scale) — a dependency-free stand-in for
    the paper's plots in terminal output.
    """
    points = [
        (name, x, float(y))
        for name, xy in series.items()
        for x, y in xy
        if y is not None
    ]
    if not points:
        return "(no data)"
    values = [y for _name, _x, y in points]
    top = max(values)
    positive = [v for v in values if v > 0]
    floor = min(positive) if positive else 1.0

    def bar(y: float) -> int:
        if y <= 0 or top <= 0:
            return 0
        if log_y and top / floor > 10:
            import math

            span = math.log(top / floor) or 1.0
            return max(1, round(width * math.log(max(y, floor) / floor) / span))
        return max(1, round(width * y / top))

    label_w = max(len(f"{name} {x}") for name, x, _y in points)
    lines = [f"{y_label} (max {top:.4g})"] if y_label else []
    last_name = None
    for name, x, y in points:
        if name != last_name and last_name is not None:
            lines.append("")
        last_name = name
        label = f"{name} {x}".ljust(label_w)
        lines.append(f"{label} | {'#' * bar(y)} {y:.4g}")
    return "\n".join(lines)
