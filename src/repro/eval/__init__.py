"""Evaluation: the paper's accuracy and performance metrics (§6.2),
per-figure experiment runners (§7), and report rendering."""

from .metrics import (
    dataset_reduction,
    f1_score,
    map_mar,
    precision_recall_f1,
)
from .speedup import SpeedupModel

__all__ = [
    "precision_recall_f1",
    "f1_score",
    "map_mar",
    "dataset_reduction",
    "SpeedupModel",
]
