"""Method registry and single-run driver used by the experiment
functions, the CLI, and the benchmarks.

A *method spec* is a string: ``"adaLSH"``, ``"Pairs"``, ``"LSH1280"``,
``"LSH640nP"``, ... — the same names the paper's figures use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from ..baselines import LSHBlocking, PairsBaseline
from ..core import AdaptiveConfig, AdaptiveLSH
from ..datasets.base import Dataset
from ..errors import ConfigurationError
from ..obs.spans import NULL_SPAN
from ..rngutil import SeedLike
from .metrics import dataset_reduction, map_mar, precision_recall_f1

_LSH_SPEC = re.compile(r"^LSH(\d+)(nP)?$")


def make_method(
    dataset: Dataset, spec: str, seed: SeedLike = None, **kwargs: Any
) -> AdaptiveLSH | PairsBaseline | LSHBlocking:
    """Instantiate a filtering method from its paper-style name.

    Extra keyword arguments are forwarded to the method constructor
    (e.g. ``budgets=...`` or ``noise_factor=...`` for adaLSH).
    """
    if spec == "adaLSH":
        observer = kwargs.pop("observer", None)
        config = kwargs.pop("config", None)
        if config is None:
            config = AdaptiveConfig(seed=seed, **kwargs)
        elif kwargs:
            raise ConfigurationError(
                "pass either config= or individual adaLSH options, not both"
            )
        return AdaptiveLSH(
            dataset.store, dataset.rule, config=config, observer=observer
        )
    if spec == "Pairs":
        return PairsBaseline(dataset.store, dataset.rule, **kwargs)
    match = _LSH_SPEC.match(spec)
    if match:
        return LSHBlocking(
            dataset.store,
            dataset.rule,
            n_hashes=int(match.group(1)),
            verify=match.group(2) is None,
            seed=seed,
            **kwargs,
        )
    raise ConfigurationError(
        f"unknown method spec {spec!r}; expected adaLSH, Pairs, LSH<X>, "
        f"or LSH<X>nP"
    )


@dataclass
class RunRecord:
    """One (dataset, method, k) filtering run plus its gold metrics."""

    dataset: str
    method: str
    k: int
    k_hat: int
    wall_time: float
    output_size: int
    cluster_sizes: list
    precision: float
    recall: float
    f1: float
    map_score: float
    mar_score: float
    reduction_pct: float
    hashes: int
    pairs: int
    #: Union of all output cluster members (record ids).
    output_rids: object = None
    info: dict = field(default_factory=dict)
    #: :class:`~repro.obs.RunReport` of the run, when the method was
    #: observed (adaLSH with an enabled observer); ``None`` otherwise.
    report: object = None

    def row(self) -> dict:
        """Flat dict view for table rendering."""
        return {
            "dataset": self.dataset,
            "method": self.method,
            "k": self.k,
            "k_hat": self.k_hat,
            "time_s": round(self.wall_time, 4),
            "out": self.output_size,
            "P": round(self.precision, 3),
            "R": round(self.recall, 3),
            "F1": round(self.f1, 3),
            "mAP": round(self.map_score, 3),
            "mAR": round(self.mar_score, 3),
            "red%": round(self.reduction_pct, 1),
            "hashes": self.hashes,
            "pairs": self.pairs,
        }


def run_filter(
    dataset: Dataset,
    spec: str,
    k: int,
    k_hat: int | None = None,
    seed: SeedLike = None,
    method: Any = None,
    observer: Any = None,
    **kwargs: Any,
) -> RunRecord:
    """Run one filtering method and score it against the ground truth.

    ``k_hat`` (>= ``k``) asks the filter for more clusters than the
    target top-k (the §6.1.2 accuracy knob); metrics always compare
    against the ground-truth top-``k``.  Pass a prebuilt ``method`` to
    reuse its designs/pools across several runs.

    ``observer`` (a :class:`~repro.obs.RunObserver`) is handed to
    methods that support observability; the resulting
    :class:`~repro.obs.RunReport` lands on ``RunRecord.report``.
    """
    k_hat = k_hat or k
    if k_hat < k:
        raise ConfigurationError(f"k_hat ({k_hat}) must be >= k ({k})")
    if method is None:
        if observer is not None and spec == "adaLSH":
            kwargs = dict(kwargs, observer=observer)
        method = make_method(dataset, spec, seed=seed, **kwargs)
    result = method.run(k_hat)
    truth_clusters = dataset.ground_truth_clusters()
    truth_rids = dataset.top_k_rids(k)
    score_span = (
        observer.span("score", dataset=dataset.name, method=spec)
        if observer is not None
        else NULL_SPAN
    )
    with score_span:
        precision, recall, f1 = precision_recall_f1(result.output_rids, truth_rids)
        out_clusters = [c.rids for c in result.clusters]
        map_score, mar_score = map_mar(out_clusters, truth_clusters, k)
    return RunRecord(
        dataset=dataset.name,
        method=spec,
        k=k,
        k_hat=k_hat,
        wall_time=result.wall_time,
        output_size=result.output_size,
        cluster_sizes=[c.size for c in result.clusters],
        precision=precision,
        recall=recall,
        f1=f1,
        map_score=map_score,
        mar_score=mar_score,
        reduction_pct=dataset_reduction(result.output_size, len(dataset)),
        hashes=result.counters.hashes_computed,
        pairs=result.counters.pairs_compared,
        output_rids=result.output_rids,
        info=result.info,
        report=getattr(method, "last_report", None),
    )
