"""Accuracy metrics (paper §2.1 and §6.2.1).

*Set metrics* treat the filtering output as one set of records and
compare against the records of the ground-truth top-k entities
(Precision/Recall/F1 "Gold"); *ranked metrics* treat it as a ranked
list of clusters and compute mean Average Precision / Recall over the
top-i prefixes (the paper's worked example: C = {{a,b,c,f},{e}} vs
C* = {{a,b,c},{e,g}} gives mAP = (3/4 + 4/5) / 2 = 0.775 and
mAR = (1 + 4/5) / 2 = 0.9).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..types import ArrayLike


def _as_set(rids) -> set:
    return {int(r) for r in np.asarray(rids).ravel()}


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean; 0 when both are 0."""
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def precision_recall_f1(
    output_rids: ArrayLike, truth_rids: ArrayLike
) -> tuple[float, float, float]:
    """Set precision, recall and F1 of ``output_rids`` vs ``truth_rids``.

    Conventions: empty output has precision 1 (nothing wrong was
    returned); empty truth has recall 1.
    """
    out = _as_set(output_rids)
    truth = _as_set(truth_rids)
    hit = len(out & truth)
    precision = hit / len(out) if out else 1.0
    recall = hit / len(truth) if truth else 1.0
    return precision, recall, f1_score(precision, recall)


def map_mar(
    clusters: Sequence[ArrayLike],
    truth_clusters: Sequence[ArrayLike],
    k: int | None = None,
) -> tuple[float, float]:
    """Mean Average Precision / Recall over ranked cluster prefixes.

    ``clusters`` and ``truth_clusters`` must be ordered largest-first.
    For each i in 1..k, precision_i compares the union of the first i
    output clusters to the union of the first i ground-truth clusters;
    the means over i are returned.  If the output has fewer than i
    clusters its union simply stops growing (documented convention for
    short outputs).
    """
    if k is None:
        k = len(truth_clusters)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    out_union: set = set()
    truth_union: set = set()
    precisions, recalls = [], []
    for i in range(k):
        if i < len(clusters):
            out_union |= _as_set(clusters[i])
        if i < len(truth_clusters):
            truth_union |= _as_set(truth_clusters[i])
        hit = len(out_union & truth_union)
        precisions.append(hit / len(out_union) if out_union else 1.0)
        recalls.append(hit / len(truth_union) if truth_union else 1.0)
    return float(np.mean(precisions)), float(np.mean(recalls))


def dataset_reduction(output_size: int, total: int) -> float:
    """Filtering-output size as a percentage of the dataset (§6.2.2)."""
    if total <= 0:
        raise ValueError(f"total must be positive, got {total}")
    return 100.0 * output_size / total
