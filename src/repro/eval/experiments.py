"""One experiment function per paper figure (§7 and Appendix E).

Each function takes an :class:`ExperimentConfig` (the ``small`` preset
keeps everything laptop-fast; ``full`` matches the paper's dataset
sizes) and returns an :class:`ExperimentResult` whose rows carry the
same series the paper plots.  The benchmark files under ``benchmarks/``
call these functions and assert the paper's qualitative shapes; the CLI
(``python -m repro``) renders them into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core import exponential_budgets, linear_budgets
from ..datasets import (
    extend_dataset,
    generate_cora,
    generate_popular_images,
    generate_spotsigs,
)
from ..datasets.base import Dataset
from ..datasets.popularimages import TOP1_BY_EXPONENT, images_rule
from ..datasets.spotsigs import spotsigs_rule
from ..er.recovery import perfect_recovery
from ..lsh.probability import collision_prob_curve, scheme_objective
from .metrics import map_mar, precision_recall_f1
from .reporting import render_table
from .runner import make_method, run_filter
from .speedup import SpeedupModel


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiments."""

    seed: int = 0
    cora_records: int = 800
    spotsigs_records: int = 800
    images_records: int = 2000
    #: Dataset-extension factors standing in for the paper's 1x..8x.
    scales: tuple = (1, 2, 4)
    #: LSH-X sweep (Figure 15); the paper sweeps 20..5120.
    lsh_sweep: tuple = (20, 80, 320, 1280, 5120)
    ks: tuple = (2, 5, 10, 20)
    khats: tuple = (5, 10, 15, 20)

    @classmethod
    def small(cls) -> "ExperimentConfig":
        """Fast preset used by the pytest benchmarks."""
        return cls()

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """Paper-scale preset (minutes, not seconds)."""
        return cls(
            cora_records=2000,
            spotsigs_records=2200,
            images_records=10_000,
            scales=(1, 2, 4, 8),
        )


@dataclass
class ExperimentResult:
    """Rows for one figure, plus rendering helpers."""

    figure: str
    title: str
    rows: list
    notes: str = ""

    def to_markdown(self, columns: list[str] | None = None) -> str:
        table = render_table(self.rows, columns)
        header = f"### {self.figure} — {self.title}\n\n"
        notes = f"\n\n{self.notes}" if self.notes else ""
        return header + table + notes

    def series(self, key: str, x: str, y: str) -> dict:
        """Group rows into ``{series_value: [(x, y), ...]}``."""
        out: dict = {}
        for row in self.rows:
            out.setdefault(row[key], []).append((row[x], row[y]))
        return out


class _DatasetPool:
    """Caches generated/extended datasets within one experiment run."""

    def __init__(self, cfg: ExperimentConfig) -> None:
        self.cfg = cfg
        self._cache: dict = {}

    def cora(self, scale: int = 1) -> Dataset:
        return self._scaled(
            ("cora", scale),
            lambda: generate_cora(self.cfg.cora_records, seed=self.cfg.seed),
            scale,
        )

    def spotsigs(self, scale: int = 1, similarity: float = 0.4) -> Dataset:
        ds = self._scaled(
            ("spotsigs", scale),
            lambda: generate_spotsigs(
                self.cfg.spotsigs_records, seed=self.cfg.seed
            ),
            scale,
        )
        if similarity != 0.4:
            ds = replace(ds, rule=spotsigs_rule(similarity))
        return ds

    def images(self, exponent: float, threshold_degrees: float = 3.0) -> Dataset:
        key = ("images", exponent)
        if key not in self._cache:
            ratio = self.cfg.images_records / 10_000
            top1 = max(10, int(TOP1_BY_EXPONENT[round(exponent, 2)] * ratio))
            n_popular = max(20, int(500 * ratio))
            self._cache[key] = generate_popular_images(
                n_records=self.cfg.images_records,
                n_popular=n_popular,
                zipf_exponent=exponent,
                top1_size=top1,
                seed=self.cfg.seed,
            )
        ds = self._cache[key]
        return replace(ds, rule=images_rule(threshold_degrees))

    def _scaled(self, key, build, scale: int) -> Dataset:
        base_key = (key[0], 1)
        if base_key not in self._cache:
            self._cache[base_key] = build()
        if scale == 1:
            return self._cache[base_key]
        if key not in self._cache:
            self._cache[key] = extend_dataset(
                self._cache[base_key], scale, seed=self.cfg.seed + scale
            )
        return self._cache[key]


# ----------------------------------------------------------------------
# Figures 5 and 7 — analytic LSH curves and scheme design
# ----------------------------------------------------------------------
def exp_fig5_probability(cfg: ExperimentConfig) -> ExperimentResult:
    """Figure 5: probability of hashing to the same bucket vs cosine
    distance, for (w, z) in {(1,1), (15,20), (30,70)}."""
    pfunc = lambda x: np.clip(1.0 - np.asarray(x, dtype=float), 0.0, 1.0)  # noqa: E731
    rows = []
    for w, z in [(1, 1), (15, 20), (30, 70)]:
        for degrees in (5, 15, 25, 40, 55, 80, 120, 180):
            x = degrees / 180.0
            rows.append(
                {
                    "w": w,
                    "z": z,
                    "angle_deg": degrees,
                    "prob": float(collision_prob_curve(pfunc, w, z, x)),
                }
            )
    return ExperimentResult(
        "fig5", "collision probability of (w,z)-schemes", rows,
        notes="More hash functions -> sharper drop past the threshold.",
    )


def exp_fig7_scheme_design(cfg: ExperimentConfig) -> ExperimentResult:
    """Figure 7 / Example 5: budget 2100, eps 1e-3, d_thr = 15 deg —
    (15,140) violates the constraint; (30,70) beats (60,35)."""
    pfunc = lambda x: np.clip(1.0 - np.asarray(x, dtype=float), 0.0, 1.0)  # noqa: E731
    d_thr, eps, budget = 15.0 / 180.0, 1e-3, 2100
    rows = []
    for w, z in [(15, 140), (30, 70), (60, 35)]:
        prob_at_thr = float(collision_prob_curve(pfunc, w, z, d_thr))
        rows.append(
            {
                "w": w,
                "z": z,
                "prob_at_threshold": prob_at_thr,
                "feasible": prob_at_thr >= 1 - eps,
                "objective": scheme_objective(pfunc, w, z),
            }
        )
    # The optimizer's answer: the largest w whose (w, floor(budget/w))
    # scheme still meets the threshold constraint.
    best = None
    for w in range(1, budget + 1):
        z = budget // w
        if z < 1:
            break
        if float(collision_prob_curve(pfunc, w, z, d_thr)) >= 1 - eps:
            best = (w, z)
    rows.append(
        {
            "w": best[0],
            "z": best[1],
            "prob_at_threshold": float(
                collision_prob_curve(pfunc, best[0], best[1], d_thr)
            ),
            "feasible": True,
            "objective": scheme_objective(pfunc, best[0], best[1]),
        }
    )
    return ExperimentResult(
        "fig7",
        "scheme selection for budget 2100 (Example 5)",
        rows,
        notes=(
            "Reproduction note: the paper's Example 5 prose says (15,140) "
            "minimizes the objective but violates the constraint; by the "
            "paper's own Section 5.1 monotonicity (larger w lowers BOTH the "
            "objective and the threshold probability) the roles are "
            "reversed: (15,140) is the feasible scheme with the largest "
            "objective, and (30,70)/(60,35) miss the 1-eps constraint. The "
            "last row is the program's actual optimum (largest feasible w)."
        ),
    )


# ----------------------------------------------------------------------
# Figures 8-10 — execution time and F1 on Cora / SpotSigs
# ----------------------------------------------------------------------
_MAIN_METHODS = ("adaLSH", "LSH1280", "Pairs")


def _time_vs_k(pool, dataset_fn, figure, title, cfg) -> ExperimentResult:
    rows = []
    dataset = dataset_fn(1)
    for spec in _MAIN_METHODS:
        method = make_method(dataset, spec, seed=cfg.seed)
        for k in cfg.ks:
            rec = run_filter(dataset, spec, k, method=method)
            row = rec.row()
            rows.append(row)
    return ExperimentResult(figure, title, rows)


def _time_vs_size(pool, dataset_fn, figure, title, cfg, k=10) -> ExperimentResult:
    rows = []
    for scale in cfg.scales:
        dataset = dataset_fn(scale)
        for spec in _MAIN_METHODS:
            rec = run_filter(dataset, spec, k, seed=cfg.seed)
            row = rec.row()
            row["scale"] = scale
            row["n"] = len(dataset)
            rows.append(row)
    return ExperimentResult(figure, title, rows)


def exp_fig8a_cora_time_vs_k(cfg: ExperimentConfig) -> ExperimentResult:
    """Figure 8(a): execution time on Cora for k in {2, 5, 10, 20}."""
    pool = _DatasetPool(cfg)
    return _time_vs_k(pool, pool.cora, "fig8a", "execution time on Cora vs k", cfg)


def exp_fig8b_cora_time_vs_size(cfg: ExperimentConfig) -> ExperimentResult:
    """Figure 8(b): execution time on Cora 1x..8x at k = 10."""
    pool = _DatasetPool(cfg)
    return _time_vs_size(
        pool, pool.cora, "fig8b", "execution time on Cora vs dataset size", cfg
    )


def exp_fig9a_spotsigs_time_vs_k(cfg: ExperimentConfig) -> ExperimentResult:
    """Figure 9(a): execution time on SpotSigs for k in {2, 5, 10, 20}."""
    pool = _DatasetPool(cfg)
    return _time_vs_k(
        pool, pool.spotsigs, "fig9a", "execution time on SpotSigs vs k", cfg
    )


def exp_fig9b_spotsigs_time_vs_size(cfg: ExperimentConfig) -> ExperimentResult:
    """Figure 9(b): execution time on SpotSigs 1x..8x at k = 10."""
    pool = _DatasetPool(cfg)
    return _time_vs_size(
        pool,
        pool.spotsigs,
        "fig9b",
        "execution time on SpotSigs vs dataset size",
        cfg,
    )


def exp_fig10_f1_gold(cfg: ExperimentConfig) -> ExperimentResult:
    """Figure 10: F1 Gold vs k on Cora and SpotSigs; all methods give
    nearly identical clusters."""
    pool = _DatasetPool(cfg)
    rows = []
    for dataset in (pool.cora(1), pool.spotsigs(1)):
        for spec in _MAIN_METHODS:
            method = make_method(dataset, spec, seed=cfg.seed)
            for k in cfg.ks:
                rec = run_filter(dataset, spec, k, method=method)
                rows.append(rec.row())
    return ExperimentResult("fig10", "F1 Gold for different k values", rows)


# ----------------------------------------------------------------------
# Figures 11-14 — accuracy knobs: k_hat, reduction, recovery
# ----------------------------------------------------------------------
def exp_fig11_accuracy_vs_khat(cfg: ExperimentConfig, k: int = 5) -> ExperimentResult:
    """Figure 11: precision/recall gold vs k_hat for three similarity
    thresholds on SpotSigs."""
    pool = _DatasetPool(cfg)
    rows = []
    for similarity in (0.3, 0.4, 0.5):
        dataset = pool.spotsigs(1, similarity=similarity)
        method = make_method(dataset, "adaLSH", seed=cfg.seed)
        for khat in cfg.khats:
            rec = run_filter(dataset, "adaLSH", k, k_hat=khat, method=method)
            row = rec.row()
            row["similarity_thr"] = similarity
            rows.append(row)
    return ExperimentResult(
        "fig11", f"precision/recall vs k_hat (k={k}) on SpotSigs", rows
    )


def exp_fig12_reduction_speedup(cfg: ExperimentConfig, k: int = 5) -> ExperimentResult:
    """Figure 12: dataset reduction % and Speedup w/o Recovery vs k_hat
    across dataset scales."""
    pool = _DatasetPool(cfg)
    rows = []
    for scale in cfg.scales:
        dataset = pool.spotsigs(scale)
        model = SpeedupModel.measure(dataset.store, dataset.rule, seed=cfg.seed)
        method = make_method(dataset, "adaLSH", seed=cfg.seed)
        for khat in cfg.khats:
            rec = run_filter(dataset, "adaLSH", k, k_hat=khat, method=method)
            row = rec.row()
            row["scale"] = scale
            row["actual_pct"] = round(100 * dataset.top_k_fraction(k), 1)
            row["speedup_wo_recovery"] = round(
                model.speedup_without_recovery(rec.wall_time, rec.output_size), 2
            )
            rows.append(row)
    return ExperimentResult(
        "fig12", f"reduction %% and speedup w/o recovery (k={k})", rows
    )


def exp_fig13_map_mar(cfg: ExperimentConfig) -> ExperimentResult:
    """Figure 13: mAP and mAR vs k_hat for several k on SpotSigs."""
    pool = _DatasetPool(cfg)
    dataset = pool.spotsigs(1)
    method = make_method(dataset, "adaLSH", seed=cfg.seed)
    rows = []
    for k in cfg.ks:
        for khat in sorted(set(cfg.khats) | {k}):
            if khat < k:
                continue
            rec = run_filter(dataset, "adaLSH", k, k_hat=khat, method=method)
            rows.append(rec.row())
    return ExperimentResult("fig13", "mAP and mAR vs k_hat on SpotSigs", rows)


def exp_fig14_recovery(cfg: ExperimentConfig, k: int = 5) -> ExperimentResult:
    """Figure 14: Speedup with Recovery and mAP with Recovery."""
    pool = _DatasetPool(cfg)
    rows = []
    for scale in cfg.scales:
        dataset = pool.spotsigs(scale)
        truth_clusters = dataset.ground_truth_clusters()
        model = SpeedupModel.measure(dataset.store, dataset.rule, seed=cfg.seed)
        method = make_method(dataset, "adaLSH", seed=cfg.seed)
        for khat in cfg.khats:
            rec = run_filter(dataset, "adaLSH", k, k_hat=khat, method=method)
            recovered = perfect_recovery(dataset, rec.output_rids)
            map_rec, mar_rec = map_mar(recovered, truth_clusters, k)
            truth_rids = dataset.top_k_rids(k)
            rec_union = (
                np.concatenate(recovered) if recovered else np.zeros(0, np.int64)
            )
            p_rec, r_rec, f1_rec = precision_recall_f1(rec_union, truth_rids)
            row = rec.row()
            row["scale"] = scale
            row["speedup_with_recovery"] = round(
                model.speedup_with_recovery(rec.wall_time, rec.output_size), 2
            )
            row["mAP_rec"] = round(map_rec, 3)
            row["mAR_rec"] = round(mar_rec, 3)
            row["R_rec"] = round(r_rec, 3)
            rows.append(row)
    return ExperimentResult(
        "fig14", f"speedup and accuracy with recovery (k={k})", rows
    )


# ----------------------------------------------------------------------
# Figure 15 — adaLSH vs the LSH-X sweep
# ----------------------------------------------------------------------
def exp_fig15_lsh_sweep(cfg: ExperimentConfig, k: int = 10) -> ExperimentResult:
    """Figure 15: execution time of LSH-X for X in the sweep vs adaLSH,
    on SpotSigs at two scales."""
    pool = _DatasetPool(cfg)
    rows = []
    for scale in (1, cfg.scales[-1]):
        dataset = pool.spotsigs(scale)
        rec = run_filter(dataset, "adaLSH", k, seed=cfg.seed)
        row = rec.row()
        row["scale"] = scale
        rows.append(row)
        for x in cfg.lsh_sweep:
            rec = run_filter(dataset, f"LSH{x}", k, seed=cfg.seed)
            row = rec.row()
            row["scale"] = scale
            rows.append(row)
    return ExperimentResult(
        "fig15", "adaLSH vs LSH-X variations on SpotSigs", rows
    )


# ----------------------------------------------------------------------
# Figures 16-17 — PopularImages: Zipf exponents and angle thresholds
# ----------------------------------------------------------------------
_IMAGE_METHODS = ("adaLSH", "LSH320", "LSH2560")


def exp_fig16_images_time(cfg: ExperimentConfig, k: int = 10) -> ExperimentResult:
    """Figure 16: execution time vs Zipf exponent for thresholds 3/5 deg."""
    pool = _DatasetPool(cfg)
    rows = []
    for threshold in (3.0, 5.0):
        for exponent in (1.05, 1.1, 1.2):
            dataset = pool.images(exponent, threshold)
            for spec in _IMAGE_METHODS:
                rec = run_filter(dataset, spec, k, seed=cfg.seed)
                row = rec.row()
                row["threshold_deg"] = threshold
                row["exponent"] = exponent
                rows.append(row)
    return ExperimentResult(
        "fig16", "execution time on PopularImages vs Zipf exponent", rows
    )


def exp_fig17_images_f1(cfg: ExperimentConfig, k: int = 10) -> ExperimentResult:
    """Figure 17: F1 Gold vs Zipf exponent for thresholds 2/3/5 deg."""
    pool = _DatasetPool(cfg)
    rows = []
    for threshold in (2.0, 3.0, 5.0):
        for exponent in (1.05, 1.1, 1.2):
            dataset = pool.images(exponent, threshold)
            rec = run_filter(dataset, "adaLSH", k, seed=cfg.seed)
            row = rec.row()
            row["threshold_deg"] = threshold
            row["exponent"] = exponent
            rows.append(row)
    return ExperimentResult("fig17", "F1 Gold on PopularImages", rows)


# ----------------------------------------------------------------------
# Appendix E — nP variants, cost-model noise, budget modes
# ----------------------------------------------------------------------
def exp_fig20_np_variants(cfg: ExperimentConfig, k: int = 10) -> ExperimentResult:
    """Figure 20: LSH20/LSH640 with and without the pairwise stage;
    accuracy measured as F1 *target* (vs the Pairs outcome)."""
    pool = _DatasetPool(cfg)
    rows = []
    for scale in cfg.scales:
        dataset = pool.spotsigs(scale)
        target = make_method(dataset, "Pairs").run(k)
        target_rids = target.output_rids
        target_sizes = [c.size for c in target.clusters]
        for spec in ("adaLSH", "LSH20", "LSH640", "LSH20nP", "LSH640nP"):
            rec = run_filter(dataset, spec, k, seed=cfg.seed)
            p, r, f1 = precision_recall_f1(rec.output_rids, target_rids)
            row = rec.row()
            row["scale"] = scale
            row["F1_target"] = round(f1, 3)
            # F1 target punishes ties (several entities of equal size
            # straddling rank k); size-multiset equality shows whether
            # the output is an equally valid top-k.
            row["sizes_match_target"] = rec.cluster_sizes == target_sizes
            rows.append(row)
    return ExperimentResult(
        "fig20", "LSH blocking variants: time vs F1 target", rows
    )


def exp_fig21_cost_noise(cfg: ExperimentConfig, ks: tuple[int, ...] = (2, 10)) -> ExperimentResult:
    """Figure 21: execution time under cost-model noise nf.

    The cost model is calibrated once per dataset scale and each noise
    level perturbs that same model (the paper adds noise to the
    estimate, not to the measurement procedure).
    """
    pool = _DatasetPool(cfg)
    rows = []
    for k in ks:
        for scale in cfg.scales:
            dataset = pool.spotsigs(scale)
            reference = make_method(dataset, "adaLSH", seed=cfg.seed)
            reference.prepare()
            base_model = reference.cost_model
            for nf in (1.0, 0.5, 2.0, 0.2, 5.0):
                rec = run_filter(
                    dataset,
                    "adaLSH",
                    k,
                    seed=cfg.seed,
                    cost_model=base_model.with_noise(nf),
                )
                row = rec.row()
                row["scale"] = scale
                row["noise_factor"] = nf
                rows.append(row)
    return ExperimentResult(
        "fig21", "adaLSH execution time under cost-model noise", rows
    )


def exp_fig22_budget_modes(cfg: ExperimentConfig, k: int = 10) -> ExperimentResult:
    """Figure 22: Exponential vs Linear budget selection modes."""
    pool = _DatasetPool(cfg)
    modes = {
        "expo": exponential_budgets(),
        "lin320": linear_budgets(320, length=10),
        "lin640": linear_budgets(640, length=10),
        "lin1280": linear_budgets(1280, length=8),
    }
    rows = []
    for dataset_fn in (pool.cora, pool.spotsigs):
        for scale in cfg.scales:
            dataset = dataset_fn(scale)
            for mode, budgets in modes.items():
                rec = run_filter(
                    dataset, "adaLSH", k, seed=cfg.seed, budgets=budgets
                )
                row = rec.row()
                row["scale"] = scale
                row["mode"] = mode
                rows.append(row)
    return ExperimentResult(
        "fig22", "budget selection modes (Exponential vs Linear)", rows
    )


#: Registry used by the CLI and the benchmark suite.
ALL_EXPERIMENTS = {
    "fig5": exp_fig5_probability,
    "fig7": exp_fig7_scheme_design,
    "fig8a": exp_fig8a_cora_time_vs_k,
    "fig8b": exp_fig8b_cora_time_vs_size,
    "fig9a": exp_fig9a_spotsigs_time_vs_k,
    "fig9b": exp_fig9b_spotsigs_time_vs_size,
    "fig10": exp_fig10_f1_gold,
    "fig11": exp_fig11_accuracy_vs_khat,
    "fig12": exp_fig12_reduction_speedup,
    "fig13": exp_fig13_map_mar,
    "fig14": exp_fig14_recovery,
    "fig15": exp_fig15_lsh_sweep,
    "fig16": exp_fig16_images_time,
    "fig17": exp_fig17_images_f1,
    "fig20": exp_fig20_np_variants,
    "fig21": exp_fig21_cost_noise,
    "fig22": exp_fig22_budget_modes,
}
