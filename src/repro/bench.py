"""Shared benchmark-result emission (``BENCH_*.json`` schema).

Every benchmark under ``benchmarks/`` historically wrote its own ad-hoc
JSON shape, which made cross-run tooling (nightly archives, perf
dashboards, ``--check-baseline`` gates) parse five different envelopes.
:func:`emit_result` is the one funnel: it stamps a common header —
``schema_version``, the benchmark name, the current git revision, the
benchmark's configuration plus a stable hash of it, and the caller's
wall-clock timings — and keeps the benchmark-specific payload keys
**top-level**, so existing consumers (``bench_topk_macro``'s baseline
gate reads ``baseline["scenarios"]``) keep working unchanged.

The header keys are reserved: a payload that collides with one raises
instead of silently shadowing the envelope.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from collections.abc import Mapping
from typing import Any

#: Bumped on any incompatible change to the emitted envelope.
SCHEMA_VERSION = 1

#: Envelope keys a payload may not shadow.
RESERVED_KEYS = frozenset(
    {"schema_version", "benchmark", "git_rev", "config", "config_hash", "timings"}
)


def git_rev() -> str | None:
    """The current short git revision, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def config_hash(config: Mapping[str, Any]) -> str:
    """Stable 12-hex-digit digest of a JSON-serializable config mapping.

    Key order does not matter (canonical sorted-key JSON is hashed), so
    two runs with the same parameters hash identically regardless of
    how the dict was assembled.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def emit_result(
    path: str | None,
    name: str,
    *,
    config: Mapping[str, Any],
    timings: Mapping[str, float],
    payload: Mapping[str, Any],
    echo: bool = True,
) -> dict[str, Any]:
    """Write one ``BENCH_*.json`` document and return it.

    ``config`` is the benchmark's parameter set (records, seeds, k,
    ...) and is stored verbatim next to its :func:`config_hash`;
    ``timings`` maps stage names to seconds (rounded to 10 µs);
    ``payload`` keys land top-level in the document.  ``path=None``
    skips the file write (callers that gate without archiving).
    """
    clash = RESERVED_KEYS & set(payload)
    if clash:
        raise ValueError(f"payload keys shadow the envelope: {sorted(clash)}")
    document: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "git_rev": git_rev(),
        "config": dict(config),
        "config_hash": config_hash(config),
        "timings": {k: round(float(v), 5) for k, v in timings.items()},
    }
    document.update(payload)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
    if echo:
        json.dump(document, sys.stdout, indent=2)
        sys.stdout.write("\n")
    return document
