"""Top-k entity resolution with adaptive locality-sensitive hashing.

A from-scratch reproduction of Verroios & Garcia-Molina, *"Top-K Entity
Resolution with Adaptive Locality-Sensitive Hashing"*.

Quickstart::

    from repro import AdaptiveConfig, AdaptiveLSH, generate_spotsigs

    dataset = generate_spotsigs(n_records=2200, seed=0)
    method = AdaptiveLSH(dataset.store, dataset.rule,
                         config=AdaptiveConfig(seed=0))
    result = method.run(k=10)
    for cluster in result.clusters:
        print(cluster.size, cluster.rids[:5])

Serving (persistent indexes; see ``docs/SERVING.md``)::

    from repro import IndexSnapshot, ResolverSession

    IndexSnapshot.capture(method).save("index.npz")
    with ResolverSession.from_snapshot("index.npz", dataset.store) as s:
        result = s.top_k(10)           # warm: skips design + hashing

Public surface:

* records — :class:`RecordStore`, :class:`Schema`;
* match rules — :class:`ThresholdRule`, :class:`AndRule`,
  :class:`OrRule`, :class:`WeightedAverageRule` over
  :class:`CosineDistance` / :class:`JaccardDistance`;
* the adaptive filter — :class:`AdaptiveLSH` / :func:`adaptive_filter`,
  configured through the frozen :class:`AdaptiveConfig`;
* serving — :class:`IndexSnapshot` (persistent prepared state),
  :class:`ResolverSession` (long-lived warm sessions),
  :class:`ResolverService` (sharded async HTTP service, configured by
  :class:`ServiceConfig`, load-tested by :mod:`repro.serve.loadgen`),
  :class:`StreamingTopK` (online refine, :mod:`repro.online`);
* baselines — :class:`LSHBlocking` (LSH-X / LSH-X-nP),
  :class:`PairsBaseline`;
* the Figure-1 pipeline — :class:`TopKPipeline`;
* synthetic datasets — :func:`generate_cora`,
  :func:`generate_spotsigs`, :func:`generate_popular_images`,
  :func:`extend_dataset`;
* metrics — :func:`precision_recall_f1`, :func:`map_mar`,
  :class:`SpeedupModel`;
* observability — :class:`RunObserver` (spans + metrics + round
  events), :class:`RunReport` (serializable run report),
  :class:`MetricsRegistry`, :class:`Tracer` (see :mod:`repro.obs`).
"""

from .baselines import LSHBlocking, PairsBaseline
from .core import (
    AdaptiveConfig,
    AdaptiveLSH,
    CostModel,
    FilterResult,
    adaptive_filter,
    exponential_budgets,
    linear_budgets,
)
from .datasets import (
    Dataset,
    extend_dataset,
    generate_cora,
    generate_popular_images,
    generate_querylog,
    generate_spotsigs,
)
from .distance import (
    AndRule,
    CosineDistance,
    EuclideanDistance,
    JaccardDistance,
    MatchRule,
    OrRule,
    ThresholdRule,
    WeightedAverageRule,
)
from .er import TopKPipeline
from .errors import ReproError
from .io import load_dataset, rule_from_spec, rule_to_spec, save_dataset
from .eval import SpeedupModel, map_mar, precision_recall_f1
from .obs import MetricsRegistry, RunObserver, RunReport, Tracer
from .online import StreamingTopK
from .records import FieldKind, FieldSpec, Record, RecordStore, Schema
from .serve import (
    IndexSnapshot,
    LoadProfile,
    ResolverService,
    ResolverSession,
    ServiceConfig,
    ShardOracle,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveConfig",
    "AdaptiveLSH",
    "adaptive_filter",
    "IndexSnapshot",
    "LoadProfile",
    "ResolverService",
    "ResolverSession",
    "ServiceConfig",
    "ShardOracle",
    "StreamingTopK",
    "CostModel",
    "FilterResult",
    "exponential_budgets",
    "linear_budgets",
    "LSHBlocking",
    "PairsBaseline",
    "TopKPipeline",
    "Dataset",
    "extend_dataset",
    "generate_cora",
    "generate_spotsigs",
    "generate_popular_images",
    "generate_querylog",
    "MatchRule",
    "ThresholdRule",
    "AndRule",
    "OrRule",
    "WeightedAverageRule",
    "CosineDistance",
    "EuclideanDistance",
    "JaccardDistance",
    "RecordStore",
    "Schema",
    "Record",
    "FieldKind",
    "FieldSpec",
    "SpeedupModel",
    "precision_recall_f1",
    "map_mar",
    "MetricsRegistry",
    "RunObserver",
    "RunReport",
    "Tracer",
    "ReproError",
    "save_dataset",
    "load_dataset",
    "rule_to_spec",
    "rule_from_spec",
    "__version__",
]
