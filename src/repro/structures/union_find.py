"""Plain disjoint-set union over dense integer ids.

Not used by the adaptive algorithm itself (which uses the paper's
parent-pointer trees), but handy as an independent implementation for
cross-checking connected components in tests and for the simple
transitive-closure ER stage.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return int(root)

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return ra

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def components(self) -> list[list[int]]:
        """All components as lists of member ids (unordered)."""
        groups: dict[int, list[int]] = {}
        for x in range(len(self.parent)):
            groups.setdefault(self.find(x), []).append(x)
        return list(groups.values())
