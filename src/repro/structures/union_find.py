"""Disjoint-set union over dense integer ids.

:class:`UnionFind` is the plain structure — not used by the adaptive
algorithm itself (which uses the paper's parent-pointer trees), but
handy as an independent implementation for cross-checking connected
components in tests and for the simple transitive-closure ER stage.

:class:`ClusterUnionFind` additionally threads a leaf chain through
each component, mirroring the parent-pointer forest's merge rule
exactly (larger side keeps its leaves first; on ties the first edge
endpoint's tree stays left).  The blocked pairwise strategy uses it to
union whole ``np.nonzero`` edge arrays per batch instead of walking
them edge by edge at Python level, while producing byte-identical
cluster arrays — same membership, same leaf order, same cluster
emission order — as replaying the edges through
:class:`~repro.structures.parent_pointer_tree.ParentPointerForest`.
"""

from __future__ import annotations

import numpy as np

from ..types import IntArray


class UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return int(root)

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return ra

    def union_edges(self, a: IntArray, b: IntArray) -> None:
        """Union every edge ``(a[i], b[i])`` in enumeration order.

        Equivalent to ``for x, y in zip(a, b): self.union(x, y)`` but
        without per-edge NumPy scalar boxing — the arrays are unpacked
        to native ints once and the sequential merges (inherently
        order-dependent for tie-breaking) run over plain lists.
        """
        for x, y in zip(a.tolist(), b.tolist()):
            self.union(x, y)

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def components(self) -> list[list[int]]:
        """All components as lists of member ids (unordered)."""
        groups: dict[int, list[int]] = {}
        for x in range(len(self.parent)):
            groups.setdefault(self.find(x), []).append(x)
        return list(groups.values())


class ClusterUnionFind:
    """Union-find over ``0..n-1`` that tracks leaf chains per component.

    Reproduces the observable behaviour of running the same union
    sequence through a :class:`~repro.structures.parent_pointer_tree.
    ParentPointerForest` seeded with ``make_singleton`` in id order:

    * merging keeps the larger component's chain first; on equal sizes
      the component of the edge's *first* endpoint stays first (the
      forest swaps only on a strict ``root1.n_leaves < root2.n_leaves``);
    * :meth:`clusters` emits components ordered by their first-created
      member — i.e. by smallest id, matching ``roots()`` iteration over
      insertion-ordered leaves — with members in chain order.

    Internal state lives in Python lists rather than NumPy arrays: the
    merge loop is sequential by nature (each union's tie-break depends
    on sizes produced by earlier unions) and list indexing avoids the
    scalar boxing that dominates per-edge array access.
    """

    __slots__ = ("_parent", "_size", "_head", "_tail", "_next")

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._size = [1] * n
        self._head = list(range(n))
        self._tail = list(range(n))
        self._next = [-1] * n

    def find(self, x: int) -> int:
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        """Merge the components of ``a`` and ``b`` (no-op if same).

        ``a`` plays the forest's ``find_root(r1)`` role: its component
        stays left unless strictly smaller than ``b``'s.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        size = self._size
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        size[ra] += size[rb]
        self._next[self._tail[ra]] = self._head[rb]
        self._tail[ra] = self._tail[rb]

    def union_edges(self, a: IntArray, b: IntArray) -> None:
        """Union every edge ``(a[i], b[i])`` in enumeration order."""
        parent = self._parent
        size = self._size
        head = self._head
        tail = self._tail
        nxt = self._next
        for x, y in zip(a.tolist(), b.tolist()):
            ra = x
            while parent[ra] != ra:
                ra = parent[ra]
            while parent[x] != ra:
                parent[x], x = ra, parent[x]
            rb = y
            while parent[rb] != rb:
                rb = parent[rb]
            while parent[y] != rb:
                parent[y], y = rb, parent[y]
            if ra == rb:
                continue
            if size[ra] < size[rb]:
                ra, rb = rb, ra
            parent[rb] = ra
            size[ra] += size[rb]
            nxt[tail[ra]] = head[rb]
            tail[ra] = tail[rb]

    def clusters(self) -> list[IntArray]:
        """All components, ordered by first-created member, each as an
        ``int64`` array of member ids in chain order."""
        n = len(self._parent)
        out: list[IntArray] = []
        seen = [False] * n
        nxt = self._next
        for x in range(n):
            root = self.find(x)
            if seen[root]:
                continue
            seen[root] = True
            members = np.empty(self._size[root], dtype=np.int64)
            cur = self._head[root]
            for i in range(self._size[root]):
                members[i] = cur
                cur = nxt[cur]
            out.append(members)
        return out
