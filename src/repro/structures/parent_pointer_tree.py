"""Parent-pointer trees (paper Appendix B.1 / B.2).

Each tree represents one cluster.  Leaves carry record ids and are
chained left-to-right (each leaf points at "the first leaf on the
right"); the root knows the first and last leaf and the total leaf
count, so that

* iterating a cluster's records is ``O(size)``,
* merging two clusters is ``O(1)`` pointer surgery plus a root lookup,
* a cluster's size is read in ``O(1)``.

The forest object owns the leaf-per-record mapping used by transitive
hashing (Appendix B.2 case analysis: "has the record been added to a
tree yet?").
"""

from __future__ import annotations

from collections.abc import Iterator

from ..errors import StructureError


class Node:
    """Internal node (or single-tree root).  Roots have ``parent is None``."""

    __slots__ = ("parent", "n_leaves", "first_leaf", "last_leaf")

    def __init__(self) -> None:
        self.parent: Node | None = None
        self.n_leaves = 0
        self.first_leaf: Leaf | None = None
        self.last_leaf: Leaf | None = None

    @property
    def size(self) -> int:
        return self.n_leaves


class Leaf:
    """Leaf node holding one record id."""

    __slots__ = ("parent", "rid", "next_leaf")

    def __init__(self, rid: int) -> None:
        self.parent: Node | None = None
        self.rid = rid
        self.next_leaf: Leaf | None = None


class ParentPointerForest:
    """A forest of parent-pointer trees over record ids.

    The forest starts empty; records enter it through
    :meth:`make_singleton` (Appendix B.2 case 1) and trees merge through
    :meth:`union` (cases 3/4, Figure 19).
    """

    def __init__(self) -> None:
        self._leaf_of: dict[int, Leaf] = {}

    # ------------------------------------------------------------------
    def __contains__(self, rid: int) -> bool:
        return rid in self._leaf_of

    def __len__(self) -> int:
        return len(self._leaf_of)

    def make_singleton(self, rid: int) -> Node:
        """Create a one-leaf tree for ``rid`` and return its root."""
        if rid in self._leaf_of:
            raise StructureError(f"record {rid} is already in the forest")
        leaf = Leaf(rid)
        root = Node()
        leaf.parent = root
        root.n_leaves = 1
        root.first_leaf = root.last_leaf = leaf
        self._leaf_of[rid] = leaf
        return root

    def find_root(self, rid: int) -> Node:
        """Root of the tree containing ``rid``.

        Applies path halving on internal nodes while walking, which
        keeps amortized lookups near-constant without changing any
        observable tree property.
        """
        leaf = self._leaf_of[rid]
        node = leaf.parent
        assert node is not None  # leaves always have a parent Node
        while node.parent is not None:
            if node.parent.parent is not None:
                node.parent = node.parent.parent
            node = node.parent
        return node

    def same_tree(self, r1: int, r2: int) -> bool:
        """True iff both records are currently in the same tree."""
        return self.find_root(r1) is self.find_root(r2)

    def union(self, root1: Node, root2: Node) -> Node:
        """Merge two distinct trees under a new root (Figure 19c).

        Returns the new root.  The larger tree is kept on the left so
        its leaves stay first in the chain (irrelevant semantically,
        but keeps chains deterministic for tests).
        """
        if root1 is root2:
            return root1
        if root1.n_leaves < root2.n_leaves:
            root1, root2 = root2, root1
        new_root = Node()
        root1.parent = new_root
        root2.parent = new_root
        new_root.n_leaves = root1.n_leaves + root2.n_leaves
        new_root.first_leaf = root1.first_leaf
        new_root.last_leaf = root2.last_leaf
        assert root1.last_leaf is not None  # roots of non-empty trees
        root1.last_leaf.next_leaf = root2.first_leaf
        # Old roots no longer need their leaf pointers; drop them so a
        # stale handle cannot silently iterate a partial cluster.
        root1.first_leaf = root1.last_leaf = None
        root2.first_leaf = root2.last_leaf = None
        return new_root

    def union_records(self, r1: int, r2: int) -> Node:
        """Merge the trees containing ``r1`` and ``r2`` (no-op if same)."""
        return self.union(self.find_root(r1), self.find_root(r2))

    # ------------------------------------------------------------------
    @staticmethod
    def leaves(root: Node) -> Iterator[int]:
        """Yield the record ids of a tree in chain order."""
        leaf = root.first_leaf
        if leaf is None and root.n_leaves:
            raise StructureError("cannot iterate a non-root (merged) node")
        count = 0
        while leaf is not None:
            yield leaf.rid
            count += 1
            if count > root.n_leaves:
                raise StructureError("leaf chain longer than recorded size")
            leaf = leaf.next_leaf
        if count != root.n_leaves:
            raise StructureError(
                f"leaf chain has {count} leaves, root records {root.n_leaves}"
            )

    def roots(self) -> list[Node]:
        """All distinct roots currently in the forest."""
        seen: set[int] = set()
        out: list[Node] = []
        for rid in self._leaf_of:
            root = self.find_root(rid)
            if id(root) not in seen:
                seen.add(id(root))
                out.append(root)
        return out
