"""Log-size bin array (paper Appendix B.4).

Clusters are filed into bins by ``floor(log2(size))``; the largest
cluster is found by scanning the last non-empty bin.  Insertions are
O(1) and, because cluster sizes within one bin differ by at most 2x and
bins hold few clusters in practice, pop-largest is effectively O(1).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Generic, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")


class BinIndex(Generic[T]):
    """Size-binned collection supporting O(1)-ish pop-largest."""

    def __init__(self) -> None:
        # 64 bins cover any cluster size that fits in a machine word.
        self._bins: list[list[tuple[int, T]]] = [[] for _ in range(64)]
        self._count = 0

    @staticmethod
    def _bin_of(size: int) -> int:
        if size < 1:
            raise ConfigurationError(f"cluster size must be >= 1, got {size}")
        return size.bit_length() - 1

    def add(self, item: T, size: int) -> None:
        """File ``item`` under ``size``."""
        self._bins[self._bin_of(size)].append((size, item))
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def _last_nonempty(self) -> int:
        for b in range(len(self._bins) - 1, -1, -1):
            if self._bins[b]:
                return b
        raise IndexError("pop from empty BinIndex")

    def peek_largest_size(self) -> int:
        """Size of the largest stored item (without removing it)."""
        b = self._last_nonempty()
        return max(size for size, _item in self._bins[b])

    def pop_largest(self) -> tuple[int, T]:
        """Remove and return ``(size, item)`` for the largest item."""
        b = self._last_nonempty()
        bucket = self._bins[b]
        best = max(range(len(bucket)), key=lambda i: bucket[i][0])
        # Swap-pop keeps removal O(1) within the bin.
        bucket[best], bucket[-1] = bucket[-1], bucket[best]
        size, item = bucket.pop()
        self._count -= 1
        return size, item

    def drain(self) -> Iterator[tuple[int, T]]:
        """Yield all remaining ``(size, item)`` pairs, largest first."""
        while self._count:
            yield self.pop_largest()
