"""Data structures from Appendix B: parent-pointer trees and the
log-size bin index used for Largest-First cluster selection."""

from .bin_index import BinIndex
from .parent_pointer_tree import Leaf, Node, ParentPointerForest
from .union_find import ClusterUnionFind, UnionFind

__all__ = [
    "ParentPointerForest",
    "Node",
    "Leaf",
    "BinIndex",
    "UnionFind",
    "ClusterUnionFind",
]
