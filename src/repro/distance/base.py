"""Base interface for per-field distance metrics.

A :class:`FieldDistance` knows three things about one record field:

1. how to compute the *normalized* distance (in ``[0, 1]``) between two
   records, both one pair at a time and as a full pairwise matrix;
2. the collision-probability curve ``p(x)`` of the matching LSH family
   (the probability that one random hash function agrees on two records
   at distance ``x`` — paper §5.1);
3. which hash family implements that curve (used by the scheme
   designer to build transitive hashing functions).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from ..records import FieldKind, RecordStore
from ..rngutil import SeedLike
from ..types import ArrayLike, FloatArray

if TYPE_CHECKING:
    from ..lsh.families import HashFamily


class FieldDistance(abc.ABC):
    """A normalized distance metric over one record field."""

    #: Name of the record field this metric reads.
    field: str

    @property
    @abc.abstractmethod
    def kind(self) -> FieldKind:
        """The physical field kind this metric applies to."""

    @abc.abstractmethod
    def distance(self, store: RecordStore, r1: int, r2: int) -> float:
        """Normalized distance in ``[0, 1]`` between records ``r1``, ``r2``."""

    @abc.abstractmethod
    def pairwise(self, store: RecordStore, rids: ArrayLike) -> FloatArray:
        """Symmetric ``(m, m)`` matrix of distances among ``rids``."""

    @abc.abstractmethod
    def one_to_many(
        self, store: RecordStore, rid: int, rids: ArrayLike
    ) -> FloatArray:
        """Distances from record ``rid`` to each record in ``rids``."""

    @abc.abstractmethod
    def block(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> FloatArray:
        """``(len(rids_a), len(rids_b))`` matrix of cross distances."""

    def pairs(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> FloatArray:
        """Distances for the pair list ``zip(rids_a, rids_b)``.

        The default evaluates :meth:`distance` per pair; metrics with a
        vectorized kernel (e.g. Jaccard) override it.  Either way each
        element equals the scalar :meth:`distance` bit for bit, so rules
        built on this surface decide exactly as their per-pair forms.
        """
        rids_a = np.asarray(rids_a, dtype=np.int64)
        rids_b = np.asarray(rids_b, dtype=np.int64)
        out = np.empty(rids_a.size, dtype=np.float64)
        for i in range(int(rids_a.size)):
            out[i] = self.distance(store, int(rids_a[i]), int(rids_b[i]))
        return out

    def collision_prob(self, x: ArrayLike) -> FloatArray:
        """``p(x)``: probability one hash function collides at distance ``x``.

        Both families used in the paper (random hyperplanes for cosine,
        minhash for Jaccard) have the linear curve ``p(x) = 1 - x`` on
        the normalized distance; subclasses may override.
        """
        arr = np.asarray(x, dtype=np.float64)
        return np.clip(1.0 - arr, 0.0, 1.0)

    @abc.abstractmethod
    def make_family(self, store: RecordStore, seed: SeedLike) -> HashFamily:
        """Instantiate the LSH :class:`~repro.lsh.families.HashFamily`."""

    def validate(self, store: RecordStore) -> None:
        """Raise :class:`~repro.errors.SchemaError` if the field is absent
        or of the wrong kind."""
        actual = store.schema.kind_of(self.field)
        if actual is not self.kind:
            from ..errors import SchemaError

            raise SchemaError(
                f"distance over field {self.field!r} expects kind "
                f"{self.kind.value}, store has {actual.value}"
            )
