"""Distance metrics and match rules (paper §3 and Appendix C)."""

from .base import FieldDistance
from .cosine import CosineDistance
from .euclidean import EuclideanDistance
from .jaccard import JaccardDistance
from .rules import (
    AndRule,
    MatchRule,
    OrRule,
    ThresholdRule,
    WeightedAverageRule,
)

__all__ = [
    "FieldDistance",
    "CosineDistance",
    "EuclideanDistance",
    "JaccardDistance",
    "MatchRule",
    "ThresholdRule",
    "AndRule",
    "OrRule",
    "WeightedAverageRule",
]
