"""Jaccard distance for shingle-set fields.

``d(A, B) = 1 - |A ∩ B| / |A ∪ B|``, which the minhash family collides
on with probability exactly ``p(x) = 1 - x`` (the Jaccard similarity).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..records import FieldKind, RecordStore
from ..rngutil import SeedLike
from ..types import AnyArray, ArrayLike, FloatArray
from .base import FieldDistance

if TYPE_CHECKING:
    from ..lsh.minhash import MinHashFamily


def jaccard_distance(a: AnyArray, b: AnyArray) -> float:
    """Jaccard distance of two sorted shingle-id arrays."""
    if a.size == 0 and b.size == 0:
        return 0.0
    inter = np.intersect1d(a, b, assume_unique=True).size
    union = a.size + b.size - inter
    return 1.0 - inter / union


class JaccardDistance(FieldDistance):
    """Jaccard distance over one shingle-set field.

    ``minhash_bits`` opts into b-bit minhashing (Li & König, the
    paper's [22]): signatures keep only the low ``minhash_bits`` bits
    per hash, so the collision curve flattens to
    ``(1 - x) + x * 2^-bits`` — the scheme designer compensates with
    more hashes per table automatically.
    """

    def __init__(self, field: str = "shingles", minhash_bits: int | None = None) -> None:
        self.field = field
        self.minhash_bits = minhash_bits

    @property
    def kind(self) -> FieldKind:
        return FieldKind.SHINGLES

    def distance(self, store: RecordStore, r1: int, r2: int) -> float:
        sets = store.shingle_sets(self.field)
        return jaccard_distance(sets[r1], sets[r2])

    #: Row-chunk height for ``pairwise``.  The full ``csr @ csr.T``
    #: product densified all at once, so the transient matrices peaked
    #: at several times the m×m output; evaluating block-style row
    #: chunks bounds every intermediate to O(chunk · m) while the output
    #: is written in place.  Intersection counts are exact integers, so
    #: the chunked floats equal the one-shot ones bit for bit.
    _PAIRWISE_CHUNK = 256

    def pairwise(self, store: RecordStore, rids: ArrayLike) -> FloatArray:
        rids = np.asarray(rids, dtype=np.int64)
        m = int(rids.size)
        csr = store.shingle_csr(self.field)[rids]
        csr_t = csr.T
        sizes = np.asarray(csr.sum(axis=1), dtype=np.float64).ravel()
        dist = np.empty((m, m), dtype=np.float64)
        for lo in range(0, m, self._PAIRWISE_CHUNK):
            hi = min(lo + self._PAIRWISE_CHUNK, m)
            inter = np.asarray((csr[lo:hi] @ csr_t).todense(), dtype=np.float64)
            union = sizes[lo:hi, None] + sizes[None, :] - inter
            with np.errstate(divide="ignore", invalid="ignore"):
                sim = np.where(union > 0.0, inter / union, 1.0)
            dist[lo:hi] = 1.0 - sim
        np.fill_diagonal(dist, 0.0)
        return dist

    def one_to_many(self, store: RecordStore, rid: int, rids: ArrayLike) -> FloatArray:
        # Merge-based intersection counts instead of CSR row slicing:
        # slicing a scipy CSR materializes new matrices per call, which
        # dominates the rowwise pairwise strategy (one call per record).
        # Intersection counts are exact integers either way, so match
        # decisions are unchanged.
        rids = np.asarray(rids, dtype=np.int64)
        sets = store.shingle_sets(self.field)
        target = sets[rid]
        sizes = store.set_sizes(self.field)
        lengths = sizes[rids]
        if rids.size == 0:
            return np.zeros(0, dtype=np.float64)
        if target.size and int(lengths.sum()):
            flat = np.concatenate([sets[r] for r in rids.tolist()])
            slots = np.searchsorted(target, flat)
            hits = target[np.minimum(slots, target.size - 1)] == flat
            csum = np.concatenate([[0], np.cumsum(hits)])
            offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
            inter = (csum[offsets + lengths] - csum[offsets]).astype(np.float64)
        else:
            inter = np.zeros(rids.size, dtype=np.float64)
        union = lengths + sizes[rid] - inter
        with np.errstate(divide="ignore", invalid="ignore"):
            sim = np.where(union > 0.0, inter / union, 1.0)
        return np.asarray(1.0 - sim, dtype=np.float64)

    def block(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> FloatArray:
        rids_a = np.asarray(rids_a, dtype=np.int64)
        rids_b = np.asarray(rids_b, dtype=np.int64)
        csr = store.shingle_csr(self.field)
        inter = np.asarray((csr[rids_a] @ csr[rids_b].T).todense(), dtype=np.float64)
        sizes = store.set_sizes(self.field)
        union = sizes[rids_a][:, None] + sizes[rids_b][None, :] - inter
        with np.errstate(divide="ignore", invalid="ignore"):
            sim = np.where(union > 0.0, inter / union, 1.0)
        return np.asarray(1.0 - sim, dtype=np.float64)

    def collision_prob(self, x: ArrayLike) -> FloatArray:
        arr = np.asarray(x, dtype=np.float64)
        base = np.clip(1.0 - arr, 0.0, 1.0)
        if self.minhash_bits is None:
            return base
        return base + (1.0 - base) * 2.0**-self.minhash_bits

    def make_family(self, store: RecordStore, seed: SeedLike) -> MinHashFamily:
        from ..lsh.minhash import MinHashFamily

        return MinHashFamily(store, self.field, seed=seed, bits=self.minhash_bits)

    def __repr__(self) -> str:
        if self.minhash_bits is not None:
            return (
                f"JaccardDistance(field={self.field!r}, "
                f"minhash_bits={self.minhash_bits})"
            )
        return f"JaccardDistance(field={self.field!r})"
