"""Jaccard distance for shingle-set fields.

``d(A, B) = 1 - |A ∩ B| / |A ∪ B|``, which the minhash family collides
on with probability exactly ``p(x) = 1 - x`` (the Jaccard similarity).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..kernels import get_kernels
from ..kernels.reference import jaccard_distance
from ..records import FieldKind, RecordStore
from ..rngutil import SeedLike
from ..types import ArrayLike, FloatArray
from .base import FieldDistance

if TYPE_CHECKING:
    from ..lsh.minhash import MinHashFamily

__all__ = ["JaccardDistance", "jaccard_distance"]


class JaccardDistance(FieldDistance):
    """Jaccard distance over one shingle-set field.

    ``minhash_bits`` opts into b-bit minhashing (Li & König, the
    paper's [22]): signatures keep only the low ``minhash_bits`` bits
    per hash, so the collision curve flattens to
    ``(1 - x) + x * 2^-bits`` — the scheme designer compensates with
    more hashes per table automatically.
    """

    def __init__(self, field: str = "shingles", minhash_bits: int | None = None) -> None:
        self.field = field
        self.minhash_bits = minhash_bits

    @property
    def kind(self) -> FieldKind:
        return FieldKind.SHINGLES

    def distance(self, store: RecordStore, r1: int, r2: int) -> float:
        sets = store.shingle_sets(self.field)
        return jaccard_distance(sets[r1], sets[r2])

    #: Row-chunk height for ``pairwise``: bounds every intermediate of
    #: the backend's matrix product to O(chunk · m) while the output is
    #: written in place.  Intersection counts are exact integers, so
    #: the chunked floats equal the one-shot ones bit for bit.
    _PAIRWISE_CHUNK = 256

    def pairwise(self, store: RecordStore, rids: ArrayLike) -> FloatArray:
        backend = get_kernels()
        packed = backend.pack_sets(store, self.field)
        return backend.jaccard_pairwise(
            packed, np.asarray(rids, dtype=np.int64), self._PAIRWISE_CHUNK
        )

    def one_to_many(self, store: RecordStore, rid: int, rids: ArrayLike) -> FloatArray:
        backend = get_kernels()
        packed = backend.pack_sets(store, self.field)
        return backend.jaccard_one_to_many(
            packed, int(rid), np.asarray(rids, dtype=np.int64)
        )

    def pairs(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> FloatArray:
        backend = get_kernels()
        packed = backend.pack_sets(store, self.field)
        return backend.jaccard_block(
            packed,
            np.asarray(rids_a, dtype=np.int64),
            np.asarray(rids_b, dtype=np.int64),
        )

    def block(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> FloatArray:
        backend = get_kernels()
        packed = backend.pack_sets(store, self.field)
        return backend.jaccard_block_matrix(
            packed,
            np.asarray(rids_a, dtype=np.int64),
            np.asarray(rids_b, dtype=np.int64),
        )

    def collision_prob(self, x: ArrayLike) -> FloatArray:
        arr = np.asarray(x, dtype=np.float64)
        base = np.clip(1.0 - arr, 0.0, 1.0)
        if self.minhash_bits is None:
            return base
        return base + (1.0 - base) * 2.0**-self.minhash_bits

    def make_family(self, store: RecordStore, seed: SeedLike) -> MinHashFamily:
        from ..lsh.minhash import MinHashFamily

        return MinHashFamily(store, self.field, seed=seed, bits=self.minhash_bits)

    def __repr__(self) -> str:
        if self.minhash_bits is not None:
            return (
                f"JaccardDistance(field={self.field!r}, "
                f"minhash_bits={self.minhash_bits})"
            )
        return f"JaccardDistance(field={self.field!r})"
