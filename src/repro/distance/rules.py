"""Match rules: thresholds and their AND / OR / weighted-average
compositions (paper §3 and Appendix C).

A :class:`MatchRule` decides whether two records refer to the same
entity.  The rule tree mirrors Appendix C:

* :class:`ThresholdRule` — one field distance under a threshold (C.0);
* :class:`AndRule` — all children must match (C.1);
* :class:`OrRule` — any child may match (C.2);
* :class:`WeightedAverageRule` — weighted mean of several field
  distances under one threshold (C.3).

The scheme designer (:mod:`repro.lsh.design`) consumes the same tree to
build the AND-OR hashing constructions, so supported nesting is exactly
what Appendix C covers: ``Or(And | leaf-like, ...)``, ``And(leaf-like,
...)`` where *leaf-like* means a threshold or weighted-average rule.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable

import numpy as np

from ..errors import ConfigurationError
from ..records import RecordStore
from ..types import ArrayLike, BoolArray, FloatArray
from .base import FieldDistance


def _validate_threshold(threshold: float) -> float:
    threshold = float(threshold)
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError(
            f"threshold must be in (0, 1], got {threshold}"
        )
    return threshold


class MatchRule(abc.ABC):
    """Decides whether two records match (refer to the same entity)."""

    @abc.abstractmethod
    def is_match(self, store: RecordStore, r1: int, r2: int) -> bool:
        """True iff records ``r1`` and ``r2`` satisfy the rule."""

    @abc.abstractmethod
    def pairwise_match(self, store: RecordStore, rids: ArrayLike) -> BoolArray:
        """Boolean ``(m, m)`` matrix of matches among ``rids``.

        The diagonal is always ``True``.
        """

    @abc.abstractmethod
    def match_one_to_many(
        self, store: RecordStore, rid: int, rids: ArrayLike
    ) -> BoolArray:
        """Boolean array: does ``rid`` match each record in ``rids``?"""

    @abc.abstractmethod
    def match_block(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> BoolArray:
        """Boolean cross-match matrix between ``rids_a`` and ``rids_b``."""

    def match_pairs(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> BoolArray:
        """Match decisions for the pair list ``zip(rids_a, rids_b)``.

        Decision-identical to calling :meth:`is_match` per pair — the
        vectorized overrides reduce the same bit-identical distances
        against the same thresholds — just without the per-pair Python
        dispatch.
        """
        rids_a = np.asarray(rids_a, dtype=np.int64)
        rids_b = np.asarray(rids_b, dtype=np.int64)
        out = np.empty(rids_a.size, dtype=bool)
        for i in range(int(rids_a.size)):
            out[i] = self.is_match(store, int(rids_a[i]), int(rids_b[i]))
        return out

    @abc.abstractmethod
    def field_distances(self) -> list[FieldDistance]:
        """All field distances referenced anywhere in the rule tree."""

    def validate(self, store: RecordStore) -> None:
        """Check every referenced field against the store schema."""
        for dist in self.field_distances():
            dist.validate(store)


class ThresholdRule(MatchRule):
    """``d(r1, r2) <= threshold`` on a single field distance."""

    def __init__(self, distance: FieldDistance, threshold: float) -> None:
        self.distance = distance
        self.threshold = _validate_threshold(threshold)

    def is_match(self, store: RecordStore, r1: int, r2: int) -> bool:
        return self.distance.distance(store, r1, r2) <= self.threshold

    def pairwise_match(self, store: RecordStore, rids: ArrayLike) -> BoolArray:
        return self.distance.pairwise(store, rids) <= self.threshold

    def match_one_to_many(
        self, store: RecordStore, rid: int, rids: ArrayLike
    ) -> BoolArray:
        return self.distance.one_to_many(store, rid, rids) <= self.threshold

    def match_block(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> BoolArray:
        return self.distance.block(store, rids_a, rids_b) <= self.threshold

    def match_pairs(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> BoolArray:
        return self.distance.pairs(store, rids_a, rids_b) <= self.threshold

    def field_distances(self) -> list[FieldDistance]:
        return [self.distance]

    def __repr__(self) -> str:
        return f"ThresholdRule({self.distance!r}, {self.threshold})"


class WeightedAverageRule(MatchRule):
    """``sum_i alpha_i * d_i(r1, r2) <= threshold`` (Appendix C.3).

    Weights must be positive and sum to 1.
    """

    def __init__(
        self,
        distances: Iterable[FieldDistance],
        weights: ArrayLike,
        threshold: float,
    ) -> None:
        self.distances = list(distances)
        self.weights: FloatArray = np.asarray(weights, dtype=np.float64)
        if len(self.distances) != self.weights.size or not self.distances:
            raise ConfigurationError(
                "need one positive weight per distance (and at least one)"
            )
        if np.any(self.weights <= 0.0) or not np.isclose(self.weights.sum(), 1.0):
            raise ConfigurationError(
                f"weights must be positive and sum to 1, got {self.weights}"
            )
        self.threshold = _validate_threshold(threshold)

    def combined_distance(self, store: RecordStore, r1: int, r2: int) -> float:
        """The weighted-average distance ``d̄(r1, r2)``."""
        return float(
            sum(
                w * d.distance(store, r1, r2)
                for w, d in zip(self.weights, self.distances)
            )
        )

    def is_match(self, store: RecordStore, r1: int, r2: int) -> bool:
        return self.combined_distance(store, r1, r2) <= self.threshold

    def pairwise_match(self, store: RecordStore, rids: ArrayLike) -> BoolArray:
        total: FloatArray | None = None
        for w, d in zip(self.weights, self.distances):
            part = w * d.pairwise(store, rids)
            total = part if total is None else total + part
        assert total is not None  # constructor guarantees >= 1 distance
        return total <= self.threshold

    def match_one_to_many(
        self, store: RecordStore, rid: int, rids: ArrayLike
    ) -> BoolArray:
        total: FloatArray | None = None
        for w, d in zip(self.weights, self.distances):
            part = w * d.one_to_many(store, rid, rids)
            total = part if total is None else total + part
        assert total is not None
        return total <= self.threshold

    def match_block(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> BoolArray:
        total: FloatArray | None = None
        for w, d in zip(self.weights, self.distances):
            part = w * d.block(store, rids_a, rids_b)
            total = part if total is None else total + part
        assert total is not None
        return total <= self.threshold

    def match_pairs(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> BoolArray:
        # Accumulating 0 + w₀d₀ + w₁d₁ + … matches the scalar
        # ``combined_distance`` sum exactly (IEEE ``0.0 + x == x``).
        total: FloatArray | None = None
        for w, d in zip(self.weights, self.distances):
            part = w * d.pairs(store, rids_a, rids_b)
            total = part if total is None else total + part
        assert total is not None
        return total <= self.threshold

    def field_distances(self) -> list[FieldDistance]:
        return list(self.distances)

    def __repr__(self) -> str:
        return (
            f"WeightedAverageRule({self.distances!r}, "
            f"weights={self.weights.tolist()}, threshold={self.threshold})"
        )


class _CompositeRule(MatchRule):
    """Shared plumbing for AND / OR composition."""

    def __init__(self, children: Iterable[MatchRule]) -> None:
        self.children = list(children)
        if len(self.children) < 2:
            raise ConfigurationError(
                f"{type(self).__name__} needs at least two children"
            )
        for child in self.children:
            if not isinstance(child, MatchRule):
                raise ConfigurationError(
                    f"{type(self).__name__} children must be MatchRule, "
                    f"got {type(child).__name__}"
                )

    def field_distances(self) -> list[FieldDistance]:
        out: list[FieldDistance] = []
        for child in self.children:
            out.extend(child.field_distances())
        return out


class AndRule(_CompositeRule):
    """All children must match (Appendix C.1)."""

    def is_match(self, store: RecordStore, r1: int, r2: int) -> bool:
        return all(c.is_match(store, r1, r2) for c in self.children)

    def pairwise_match(self, store: RecordStore, rids: ArrayLike) -> BoolArray:
        out: BoolArray | None = None
        for child in self.children:
            part = child.pairwise_match(store, rids)
            out = part if out is None else out & part
        assert out is not None  # constructor guarantees >= 2 children
        return out

    def match_one_to_many(
        self, store: RecordStore, rid: int, rids: ArrayLike
    ) -> BoolArray:
        out: BoolArray | None = None
        for child in self.children:
            part = child.match_one_to_many(store, rid, rids)
            out = part if out is None else out & part
        assert out is not None
        return out

    def match_block(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> BoolArray:
        out: BoolArray | None = None
        for child in self.children:
            part = child.match_block(store, rids_a, rids_b)
            out = part if out is None else out & part
        assert out is not None
        return out

    def match_pairs(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> BoolArray:
        out: BoolArray | None = None
        for child in self.children:
            part = child.match_pairs(store, rids_a, rids_b)
            out = part if out is None else out & part
        assert out is not None
        return out

    def __repr__(self) -> str:
        return f"AndRule({self.children!r})"


class OrRule(_CompositeRule):
    """Any child may match (Appendix C.2)."""

    def is_match(self, store: RecordStore, r1: int, r2: int) -> bool:
        return any(c.is_match(store, r1, r2) for c in self.children)

    def pairwise_match(self, store: RecordStore, rids: ArrayLike) -> BoolArray:
        out: BoolArray | None = None
        for child in self.children:
            part = child.pairwise_match(store, rids)
            out = part if out is None else out | part
        assert out is not None
        return out

    def match_one_to_many(
        self, store: RecordStore, rid: int, rids: ArrayLike
    ) -> BoolArray:
        out: BoolArray | None = None
        for child in self.children:
            part = child.match_one_to_many(store, rid, rids)
            out = part if out is None else out | part
        assert out is not None
        return out

    def match_block(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> BoolArray:
        out: BoolArray | None = None
        for child in self.children:
            part = child.match_block(store, rids_a, rids_b)
            out = part if out is None else out | part
        assert out is not None
        return out

    def match_pairs(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> BoolArray:
        out: BoolArray | None = None
        for child in self.children:
            part = child.match_pairs(store, rids_a, rids_b)
            out = part if out is None else out | part
        assert out is not None
        return out

    def __repr__(self) -> str:
        return f"OrRule({self.children!r})"
