"""Normalized Euclidean distance with the p-stable projection family.

An extension beyond the paper's two metrics (the LSH literature the
paper builds on — Indyk & Motwani; Datar et al.'s p-stable schemes —
covers Euclidean data, and image/embedding workloads often use it).

Distances are normalized by a caller-supplied ``scale`` (distances at
or beyond ``scale`` clamp to 1), so thresholds live in ``[0, 1]`` like
every other :class:`FieldDistance`.  The matching family hashes
``h(v) = floor((a . v + b) / r)`` with Gaussian ``a`` and uniform
``b``; its collision probability at normalized distance ``x`` is the
standard p-stable curve

    p(x) = 1 - 2 Phi(-1/c) - (2 c / sqrt(2 pi)) (1 - exp(-1 / (2 c^2)))

with ``c = x * scale / r`` — monotonically decreasing with ``p(0)=1``,
exactly what the scheme-design programs need.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
from scipy.stats import norm

from ..errors import ConfigurationError
from ..records import FieldKind, RecordStore
from ..rngutil import SeedLike
from ..types import ArrayLike, FloatArray
from .base import FieldDistance

if TYPE_CHECKING:
    from ..lsh.pstable import PStableFamily


def pstable_collision_prob(c: ArrayLike) -> FloatArray:
    """Collision probability of one p-stable hash at ratio ``c = d/r``."""
    c = np.asarray(c, dtype=np.float64)
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        inv = np.where(c > 0.0, 1.0 / np.maximum(c, 1e-300), np.inf)
        term1 = 2.0 * norm.cdf(-inv)
        term2 = (
            2.0 * c / np.sqrt(2.0 * np.pi) * (1.0 - np.exp(-0.5 * inv**2))
        )
        prob = 1.0 - term1 - term2
    return np.clip(np.where(c <= 0.0, 1.0, prob), 0.0, 1.0)


class EuclideanDistance(FieldDistance):
    """Euclidean distance over a vector field, normalized by ``scale``.

    ``bucket_width`` is the p-stable quantization width ``r`` in
    *normalized* units (default 0.5: records at half the scale apart
    land in the same bucket with probability ~0.5).
    """

    def __init__(
        self, field: str = "vec", scale: float = 1.0, bucket_width: float = 0.5
    ) -> None:
        if scale <= 0.0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        if bucket_width <= 0.0:
            raise ConfigurationError(
                f"bucket_width must be positive, got {bucket_width}"
            )
        self.field = field
        self.scale = float(scale)
        self.bucket_width = float(bucket_width)

    @property
    def kind(self) -> FieldKind:
        return FieldKind.VECTOR

    # ------------------------------------------------------------------
    def distance(self, store: RecordStore, r1: int, r2: int) -> float:
        mat = store.vectors(self.field)
        d = float(np.linalg.norm(mat[r1] - mat[r2]))
        return min(d / self.scale, 1.0)

    def pairwise(self, store: RecordStore, rids: ArrayLike) -> FloatArray:
        rids = np.asarray(rids, dtype=np.int64)
        mat = store.vectors(self.field)[rids]
        sq = np.sum(mat**2, axis=1)
        d2 = np.maximum(sq[:, None] + sq[None, :] - 2.0 * (mat @ mat.T), 0.0)
        dist = np.sqrt(d2) / self.scale
        np.fill_diagonal(dist, 0.0)
        return np.minimum(dist, 1.0)

    def one_to_many(self, store: RecordStore, rid: int, rids: ArrayLike) -> FloatArray:
        rids = np.asarray(rids, dtype=np.int64)
        mat = store.vectors(self.field)
        diff = mat[rids] - mat[rid]
        return np.minimum(np.linalg.norm(diff, axis=1) / self.scale, 1.0)

    def block(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> FloatArray:
        rids_a = np.asarray(rids_a, dtype=np.int64)
        rids_b = np.asarray(rids_b, dtype=np.int64)
        mat = store.vectors(self.field)
        a, b = mat[rids_a], mat[rids_b]
        d2 = np.maximum(
            np.sum(a**2, axis=1)[:, None]
            + np.sum(b**2, axis=1)[None, :]
            - 2.0 * (a @ b.T),
            0.0,
        )
        return np.minimum(np.sqrt(d2) / self.scale, 1.0)

    # ------------------------------------------------------------------
    def collision_prob(self, x: ArrayLike) -> FloatArray:
        arr = np.asarray(x, dtype=np.float64)
        return pstable_collision_prob(arr / self.bucket_width)

    def make_family(self, store: RecordStore, seed: SeedLike) -> PStableFamily:
        from ..lsh.pstable import PStableFamily

        return PStableFamily(
            store,
            self.field,
            bucket_width=self.bucket_width * self.scale,
            seed=seed,
        )

    def __repr__(self) -> str:
        return (
            f"EuclideanDistance(field={self.field!r}, scale={self.scale}, "
            f"bucket_width={self.bucket_width})"
        )
