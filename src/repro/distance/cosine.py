"""Cosine (normalized-angle) distance for dense vector fields.

The paper measures cosine distance as the angle between two vectors and
normalizes it by 180 degrees (Example 5), so the distance of two
records at angle ``theta`` is ``x = theta / 180`` and the random
hyperplane family collides with probability ``p(x) = 1 - x``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..records import FieldKind, RecordStore
from ..rngutil import SeedLike
from ..types import ArrayLike, FloatArray
from .base import FieldDistance

if TYPE_CHECKING:
    from ..lsh.hyperplanes import RandomHyperplaneFamily

#: Angles are normalized by a straight angle (paper Example 5).
DEGREES_FULL = 180.0


def degrees_to_normalized(theta_degrees: float) -> float:
    """Convert an angle threshold in degrees to normalized distance."""
    return float(theta_degrees) / DEGREES_FULL


def normalized_to_degrees(x: float) -> float:
    """Convert a normalized distance back to degrees."""
    return float(x) * DEGREES_FULL


class CosineDistance(FieldDistance):
    """Normalized-angle distance over one dense vector field."""

    def __init__(self, field: str = "vec") -> None:
        self.field = field

    @property
    def kind(self) -> FieldKind:
        return FieldKind.VECTOR

    # ------------------------------------------------------------------
    def _unit_rows(self, mat: FloatArray) -> FloatArray:
        norms = np.linalg.norm(mat, axis=1, keepdims=True)
        # Zero vectors are kept as-is; their angle to anything is 90deg
        # by the arccos(0) convention below.
        norms[norms == 0.0] = 1.0
        return mat / norms

    def distance(self, store: RecordStore, r1: int, r2: int) -> float:
        mat = store.vectors(self.field)
        u = self._unit_rows(mat[[r1, r2]])
        cos = float(np.clip(u[0] @ u[1], -1.0, 1.0))
        return float(np.arccos(cos) / np.pi)

    def pairwise(self, store: RecordStore, rids: ArrayLike) -> FloatArray:
        rids = np.asarray(rids, dtype=np.int64)
        u = self._unit_rows(store.vectors(self.field)[rids])
        cos = np.clip(u @ u.T, -1.0, 1.0)
        dist = np.arccos(cos) / np.pi
        np.fill_diagonal(dist, 0.0)
        return dist

    def one_to_many(self, store: RecordStore, rid: int, rids: ArrayLike) -> FloatArray:
        rids = np.asarray(rids, dtype=np.int64)
        mat = store.vectors(self.field)
        u = self._unit_rows(mat[rids])
        v = self._unit_rows(mat[[rid]])[0]
        cos = np.clip(u @ v, -1.0, 1.0)
        return np.arccos(cos) / np.pi

    def block(
        self, store: RecordStore, rids_a: ArrayLike, rids_b: ArrayLike
    ) -> FloatArray:
        mat = store.vectors(self.field)
        ua = self._unit_rows(mat[np.asarray(rids_a, dtype=np.int64)])
        ub = self._unit_rows(mat[np.asarray(rids_b, dtype=np.int64)])
        cos = np.clip(ua @ ub.T, -1.0, 1.0)
        return np.arccos(cos) / np.pi

    def make_family(self, store: RecordStore, seed: SeedLike) -> RandomHyperplaneFamily:
        from ..lsh.hyperplanes import RandomHyperplaneFamily

        return RandomHyperplaneFamily(store, self.field, seed=seed)

    def __repr__(self) -> str:
        return f"CosineDistance(field={self.field!r})"
